// Package tapas is the public entry point of the TAPAS reproduction: fast
// automatic derivation of tensor-parallel strategies for large neural
// networks (Shi et al., ICPP 2025).
//
// The pipeline mirrors Figure 2 of the paper:
//
//  1. a model's computational graph is converted to GraphNodes,
//  2. Apriori subgraph mining folds the search space to unique subgraphs,
//  3. sharding patterns are enumerated per subgraph with early stopping,
//  4. candidates are validated by symbolic shape checks,
//  5. survivors are ranked by the communication-based cost model, and
//  6. the winner is reconstructed into a per-device parallel graph.
//
// Quick start:
//
//	res, err := tapas.Search("t5-770M", 8)
//	if err != nil { ... }
//	fmt.Println(res.Strategy.Describe())
//	fmt.Println(res.Report)   // simulated iteration time, TFLOPS/GPU
//
// The search hot path is parallel: per-class enumerations (and the
// decision tree of a single large class) fan out across a bounded worker
// pool. Options.Workers selects the pool size — zero means GOMAXPROCS, 1
// forces the serial path — and the selected strategy is bit-identical for
// every worker count, so parallelism is purely a wall-clock optimization.
// (The exception is a search bounded by TimeBudget: what a deadline cuts
// off is timing-dependent, serial or parallel.)
//
// SearchAll is the batch entry point: it runs many (model, GPU-count)
// searches concurrently and returns results positionally, one per
// SearchSpec, with per-spec errors joined into the second return value.
//
//	specs := []tapas.SearchSpec{{Model: "t5-770M", GPUs: 8}, {Model: "moe-1.3B", GPUs: 16}}
//	results, err := tapas.SearchAll(specs)
package tapas

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tapas/internal/baselines"
	"tapas/internal/cluster"
	"tapas/internal/cost"
	"tapas/internal/graph"
	"tapas/internal/ir"
	"tapas/internal/mining"
	"tapas/internal/models"
	"tapas/internal/parallel"
	"tapas/internal/reconstruct"
	"tapas/internal/sim"
	"tapas/internal/strategy"
)

// Options configure a search.
type Options struct {
	// Cluster overrides the default V100 testbed preset for the GPU
	// count.
	Cluster *cluster.Cluster
	// Mining overrides the subgraph-mining thresholds.
	Mining *mining.Options
	// Enum overrides the enumeration budgets.
	Enum *strategy.EnumOptions
	// CostModel overrides the full TAPAS cost model.
	CostModel *cost.Model
	// Exhaustive disables subgraph folding (the TAPAS-ES configuration).
	Exhaustive bool
	// TimeBudget bounds exhaustive enumeration.
	TimeBudget time.Duration
	// Workers bounds the goroutines used by the parallel strategy search
	// (per-class fan-out plus intra-class decision-tree splitting). Zero
	// selects GOMAXPROCS; 1 forces the serial path. The resulting
	// strategy is identical for every value — see the package comment —
	// except under a TimeBudget, where deadline cuts are timing-dependent
	// at any worker count. Takes precedence over Enum.Workers when
	// non-zero.
	Workers int
}

// Result bundles everything a search produces.
type Result struct {
	ModelName string
	GPUs      int

	// Strategy is the selected parallel plan.
	Strategy *strategy.Strategy
	// Parallel is the reconstructed per-device graph.
	Parallel *reconstruct.ParallelGraph
	// Report is the simulated training iteration on the cluster.
	Report sim.Report

	// Search-time breakdown (the paper's headline metric).
	GroupTime    time.Duration
	MineTime     time.Duration
	SearchTime   time.Duration
	TotalTime    time.Duration
	Classes      int
	Examined     int
	Pruned       int
	UniqueGraphs int
}

// Models lists the available model names.
func Models() []string { return models.Names() }

// BuildModel constructs a registered model's computational graph.
func BuildModel(name string) (*graph.Graph, error) { return models.Build(name) }

// NewCluster returns the paper-testbed preset with the given total GPU
// count (V100 SXM2 32 GB nodes of 8, joined by 100 Gbps Ethernet).
func NewCluster(gpus int) *cluster.Cluster { return cluster.V100GPUs(gpus) }

// Search runs the full TAPAS pipeline on a registered model.
func Search(modelName string, gpus int, opts ...Options) (*Result, error) {
	g, err := models.Build(modelName)
	if err != nil {
		return nil, err
	}
	res, err := SearchGraph(g, gpus, opts...)
	if err != nil {
		return nil, err
	}
	res.ModelName = modelName
	return res, nil
}

// SearchGraph runs the full TAPAS pipeline on an arbitrary computational
// graph.
func SearchGraph(g *graph.Graph, gpus int, opts ...Options) (*Result, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	cl := opt.Cluster
	if cl == nil {
		cl = cluster.V100GPUs(gpus)
	}
	model := opt.CostModel
	if model == nil {
		model = cost.Default(cl)
	}
	enum := strategy.DefaultEnumOptions(gpus)
	if opt.Enum != nil {
		enum = *opt.Enum
	}
	if opt.TimeBudget > 0 {
		enum.TimeBudget = opt.TimeBudget
	}
	if opt.Workers != 0 {
		enum.Workers = opt.Workers
	}
	mopt := mining.DefaultOptions()
	if opt.Mining != nil {
		mopt = *opt.Mining
	}

	res := &Result{GPUs: gpus, ModelName: g.Name}
	start := time.Now()

	t0 := time.Now()
	gg, err := ir.Group(g)
	if err != nil {
		return nil, fmt.Errorf("tapas: grouping failed: %w", err)
	}
	res.GroupTime = time.Since(t0)

	var s *strategy.Strategy
	var stats *strategy.SearchStats
	if opt.Exhaustive {
		enum.MaxCandidates = maxInt(enum.MaxCandidates, 1<<15)
		s, stats, err = strategy.SearchExhaustive(gg, model, enum, cl.MemoryPerGP)
		res.UniqueGraphs = len(gg.Nodes)
	} else {
		t1 := time.Now()
		mres := mining.Mine(gg, mopt)
		classes := mining.Fold(gg, mres)
		res.MineTime = time.Since(t1)
		res.UniqueGraphs = len(classes)
		s, stats, err = strategy.SearchFolded(gg, classes, model, enum, cl.MemoryPerGP)
	}
	if err != nil {
		return nil, fmt.Errorf("tapas: strategy search failed: %w", err)
	}
	res.SearchTime = stats.EnumTime + stats.AssembleTime
	res.Classes = stats.Classes
	res.Examined = stats.Examined
	res.Pruned = stats.Pruned

	pg, err := reconstruct.Reconstruct(s)
	if err != nil {
		return nil, fmt.Errorf("tapas: reconstruction failed: %w", err)
	}

	res.Strategy = s
	res.Parallel = pg
	res.Report = sim.Run(s, sim.DefaultConfig(cl))
	res.TotalTime = time.Since(start)
	return res, nil
}

// SearchSpec names one search of a batch: a registered model (or a
// pre-built graph) and a GPU count, with optional per-search options.
type SearchSpec struct {
	// Model is a registered model name (see Models). Ignored when Graph
	// is set.
	Model string
	// Graph, when non-nil, is searched directly instead of building
	// Model — the path for custom graphio specs.
	Graph *graph.Graph
	// GPUs is the total device count for this search.
	GPUs int
	// Options overrides the per-search options (nil = defaults). A zero
	// Options.Workers is resolved by SearchAll to an even share of
	// GOMAXPROCS across the batch, so the pools do not multiply; set it
	// explicitly only when one search should claim more than its share.
	Options *Options
}

// SearchAll runs many searches concurrently across a bounded worker pool
// — the serving shape for a fleet of (model, cluster) configurations. The
// returned slice is positional: results[i] answers specs[i] and is nil
// exactly when that spec failed. The error joins every per-spec failure
// (nil when all succeed); one failing spec never aborts the others. Each
// individual search is deterministic, so a batch run returns exactly what
// sequential Search calls would have.
func SearchAll(specs []SearchSpec) ([]*Result, error) {
	// Each search's inner pool defaults to an even share of the machine:
	// batch-level concurrency × per-search workers ≈ GOMAXPROCS, rather
	// than GOMAXPROCS². Worker counts never affect results, only pacing.
	share := parallel.Workers(0) / maxInt(1, len(specs))
	results, errs := parallel.MapAll(context.Background(), 0, specs,
		func(_ context.Context, i int, spec SearchSpec) (*Result, error) {
			var opt Options
			if spec.Options != nil {
				opt = *spec.Options
			}
			if opt.Workers == 0 {
				opt.Workers = maxInt(1, share)
			}
			if spec.Graph != nil {
				return SearchGraph(spec.Graph, spec.GPUs, opt)
			}
			return Search(spec.Model, spec.GPUs, opt)
		})
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("tapas: spec %d (%s on %d GPUs): %w", i, specName(specs[i]), specs[i].GPUs, err)
		}
	}
	return results, errors.Join(errs...)
}

// specName renders the model identity of a spec for error messages.
func specName(s SearchSpec) string {
	if s.Graph != nil {
		return s.Graph.Name
	}
	return s.Model
}

// Baselines enumerates the comparison planners accepted by Baseline.
func Baselines() []string {
	return []string{"dp", "deepspeed", "megatron", "ffn-only", "mha-only", "gshard", "alpa", "flexflow"}
}

// Baseline derives a plan for the model with one of the paper's
// comparison systems and simulates it on the same cluster preset.
func Baseline(name, modelName string, gpus int, opts ...Options) (*Result, error) {
	g, err := models.Build(modelName)
	if err != nil {
		return nil, err
	}
	res, err := BaselineGraph(name, g, gpus, opts...)
	if err != nil {
		return nil, err
	}
	res.ModelName = modelName
	return res, nil
}

// BaselineGraph is Baseline for an arbitrary graph.
func BaselineGraph(name string, g *graph.Graph, gpus int, opts ...Options) (*Result, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	cl := opt.Cluster
	if cl == nil {
		cl = cluster.V100GPUs(gpus)
	}
	model := opt.CostModel
	if model == nil {
		model = cost.Default(cl)
	}

	res := &Result{GPUs: gpus, ModelName: g.Name}
	start := time.Now()
	gg, err := ir.Group(g)
	if err != nil {
		return nil, err
	}

	var s *strategy.Strategy
	switch name {
	case "dp", "data-parallel":
		s, err = baselines.DataParallel(gg, gpus, model)
	case "deepspeed", "zero2":
		s, err = baselines.DeepSpeed(gg, gpus, model)
	case "megatron":
		s, err = baselines.Megatron(gg, gpus, model)
	case "ffn-only":
		s, err = baselines.FFNOnly(gg, gpus, model)
	case "mha-only":
		s, err = baselines.MHAOnly(gg, gpus, model)
	case "gshard":
		s, err = baselines.GShardExpert(gg, gpus, model)
	case "alpa":
		var stats *baselines.AlpaStats
		s, stats, err = baselines.AlpaSearch(gg, gpus, model, baselines.DefaultAlpaOptions())
		if stats != nil {
			res.SearchTime = stats.Elapsed
			res.Examined = stats.Examined
		}
	case "flexflow":
		var stats *baselines.FlexFlowStats
		s, stats, err = baselines.FlexFlowSearch(gg, gpus, model, baselines.DefaultFlexFlowOptions())
		if stats != nil {
			res.SearchTime = stats.Elapsed
			res.Examined = stats.Proposals
		}
	default:
		return nil, fmt.Errorf("tapas: unknown baseline %q (available: %v)", name, Baselines())
	}
	if err != nil {
		return nil, fmt.Errorf("tapas: baseline %s failed: %w", name, err)
	}

	res.Strategy = s
	res.Report = sim.Run(s, sim.DefaultConfig(cl))
	res.TotalTime = time.Since(start)
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
