// Package tapas is the public entry point of the TAPAS reproduction: fast
// automatic derivation of tensor-parallel strategies for large neural
// networks (Shi et al., ICPP 2025).
//
// The pipeline mirrors Figure 2 of the paper:
//
//  1. a model's computational graph is converted to GraphNodes,
//  2. Apriori subgraph mining folds the search space to unique subgraphs,
//  3. sharding patterns are enumerated per subgraph with early stopping,
//  4. candidates are validated by symbolic shape checks,
//  5. survivors are ranked by the communication-based cost model, and
//  6. the winner is reconstructed into a per-device parallel graph.
//
// # Quick start
//
// The API is built around Engine: a reusable, concurrency-safe handle
// configured once with functional options, serving context-first,
// cancellable searches.
//
//	eng := tapas.NewEngine()
//	res, err := eng.Search(ctx, "t5-770M", 8)
//	if err != nil { ... }
//	fmt.Println(res.Strategy.Describe())
//	fmt.Println(res.Report)   // simulated iteration time, TFLOPS/GPU
//
// # Caching
//
// The Engine holds an LRU result cache keyed by (structural graph
// fingerprint, cluster signature, full option set). A repeated search for
// the same key returns the memoized Result in microseconds with CacheHit
// set; WithCache(n) sizes the cache and WithCache(0) disables it. Cached
// Results share their Strategy/Parallel structures across hits — treat
// every Result handed out by the Engine as immutable.
//
// # Cancellation
//
// Every Engine method takes a context. Cancellation and deadlines
// propagate end-to-end — subgraph mining, per-class enumeration, the
// intra-class decision-tree split, assembly and repair — and the search
// returns promptly with an error wrapping the context's error. CLIs get
// ctrl-C handling by deriving the context with signal.NotifyContext, and
// per-request deadlines with context.WithTimeout.
//
// # Observability
//
// WithProgress(fn) streams live progress events while searches run:
// phase enter/exit (group, mine, search, reconstruct, simulate), classes
// enumerated, and candidates examined. Calls are serialized; with
// concurrent searches the streams interleave, keyed by Model/GPUs.
//
// # Determinism
//
// The search hot path is parallel: per-class enumerations (and the
// decision tree of a single large class) fan out across a bounded worker
// pool. WithWorkers selects the pool size — zero means GOMAXPROCS, 1
// forces the serial path — and the selected strategy is bit-identical for
// every worker count, so parallelism is purely a wall-clock optimization.
// (The exception is a search bounded by WithTimeBudget: what a deadline
// cuts off is timing-dependent, serial or parallel.)
//
// Engine.SearchAll is the batch entry point: it runs many (model,
// GPU-count) searches concurrently and returns results positionally, one
// per SearchSpec, with per-spec errors joined into the second return
// value.
//
//	specs := []tapas.SearchSpec{{Model: "t5-770M", GPUs: 8}, {Model: "moe-1.3B", GPUs: 16}}
//	results, err := eng.SearchAll(ctx, specs)
//
// The top-level functions Search, SearchGraph, SearchAll, Baseline and
// BaselineGraph are deprecated wrappers over a lazily-initialized default
// Engine, kept for existing callers; new code should construct an Engine
// and pass a context.
package tapas

import (
	"context"
	"sync"
	"time"

	"tapas/internal/cluster"
	"tapas/internal/cost"
	"tapas/internal/graph"
	"tapas/internal/mining"
	"tapas/internal/models"
	"tapas/internal/reconstruct"
	"tapas/internal/sim"
	"tapas/internal/strategy"
)

// Options configure a search issued through the deprecated top-level
// functions. New code should configure an Engine with functional options
// instead; every field here has a With* equivalent.
type Options struct {
	// Cluster overrides the default V100 testbed preset for the GPU
	// count.
	Cluster *cluster.Cluster
	// Mining overrides the subgraph-mining thresholds.
	Mining *mining.Options
	// Enum overrides the enumeration budgets.
	Enum *strategy.EnumOptions
	// CostModel overrides the full TAPAS cost model.
	CostModel *cost.Model
	// Exhaustive disables subgraph folding (the TAPAS-ES configuration).
	Exhaustive bool
	// TimeBudget bounds exhaustive enumeration.
	TimeBudget time.Duration
	// Workers bounds the goroutines used by the parallel strategy search
	// (per-class fan-out plus intra-class decision-tree splitting). Zero
	// selects GOMAXPROCS; 1 forces the serial path. The resulting
	// strategy is identical for every value — see the package comment —
	// except under a TimeBudget, where deadline cuts are timing-dependent
	// at any worker count. Takes precedence over Enum.Workers when
	// non-zero.
	Workers int
}

// Result bundles everything a search produces.
//
// Result has no stable serialization of its own: Strategy and Parallel
// are internal pointer graphs. Summary (also the MarshalJSON encoding)
// renders the wire-safe form; the service package carries the full
// per-node plan as a versioned PlanJSON.
type Result struct {
	ModelName string
	GPUs      int

	// Strategy is the selected parallel plan.
	Strategy *strategy.Strategy
	// Parallel is the reconstructed per-device graph.
	Parallel *reconstruct.ParallelGraph
	// Report is the simulated training iteration on the cluster.
	Report sim.Report

	// CacheHit reports that this Result was served from the Engine's
	// result cache: the timing fields below describe the original cold
	// computation, and Strategy/Parallel are shared with other hits for
	// the same key (treat them as read-only).
	CacheHit bool
	// StoreHit reports that this Result was restored from the Engine's
	// persistent plan store (WithStore) instead of being computed by the
	// search pipeline: the plan was rehydrated, re-priced and
	// re-simulated, and the timing fields describe the original cold
	// computation that produced the stored plan. A Result can carry both
	// flags — a store-restored Result re-served from the memory cache.
	StoreHit bool

	// Search-time breakdown (the paper's headline metric). EnumTime and
	// AssembleTime split SearchTime into its two phases (enumeration
	// fan-out vs greedy assembly + repair); MineLevels counts the Apriori
	// growth iterations mining executed. All three are deterministic for
	// a given (graph, options) pair — worker counts only move the
	// durations, never Examined/Classes/MineLevels.
	GroupTime    time.Duration
	MineTime     time.Duration
	SearchTime   time.Duration
	EnumTime     time.Duration
	AssembleTime time.Duration
	TotalTime    time.Duration
	Classes      int
	Examined     int
	Pruned       int
	UniqueGraphs int
	MineLevels   int
}

// ErrUnknownModel is returned (wrapped) by every entry point asked for
// a model name absent from the registry — Engine.Search,
// Engine.SearchSpec, SearchAll specs and BuildModel. Serving layers
// match it with errors.Is to answer "not found" instead of a generic
// failure.
var ErrUnknownModel = models.ErrUnknownModel

// Models lists the available model names.
func Models() []string { return models.Names() }

// BuildModel constructs a registered model's computational graph.
func BuildModel(name string) (*graph.Graph, error) { return models.Build(name) }

// NewCluster returns the paper-testbed preset with the given total GPU
// count (V100 SXM2 32 GB nodes of 8, joined by 100 Gbps Ethernet).
func NewCluster(gpus int) *cluster.Cluster { return cluster.V100GPUs(gpus) }

// defaultEngine serves the deprecated top-level functions, created on
// first use. Legacy calls bypass its result cache (their contract hands
// every caller a fresh, mutable Result) but still share its model
// fingerprint memo and configuration plumbing.
var defaultEngine = sync.OnceValue(func() *Engine { return NewEngine() })

// DefaultEngine returns the process-wide Engine behind the deprecated
// top-level functions, for callers migrating incrementally (e.g. to
// observe its cache or issue context-first calls alongside legacy ones).
func DefaultEngine() *Engine { return defaultEngine() }

// Search runs the full TAPAS pipeline on a registered model.
//
// Deprecated: use Engine.Search, which takes a context for
// cancellation and serves repeat searches from the result cache. This
// wrapper bypasses the cache, preserving the historical contract that
// every call returns a fresh, caller-owned Result. To send a Result
// across a process boundary, serialize it with Result.Summary (or
// json.Marshal, which emits the same stable schema) — never the raw
// struct, whose Strategy/Parallel fields are internal pointer graphs.
func Search(modelName string, gpus int, opts ...Options) (*Result, error) {
	e := defaultEngine()
	cfg := e.base
	if len(opts) > 0 {
		cfg = e.base.overlay(opts[0])
	}
	cfg.skipCache = true // preserve the caller-owned, mutable Result contract
	return e.searchModel(context.Background(), modelName, gpus, cfg)
}

// SearchGraph runs the full TAPAS pipeline on an arbitrary computational
// graph.
//
// Deprecated: use Engine.SearchGraph, which takes a context for
// cancellation and serves repeat searches from the result cache. This
// wrapper bypasses the cache, preserving the historical contract that
// every call returns a fresh, caller-owned Result. To send a Result
// across a process boundary, serialize it with Result.Summary (or
// json.Marshal, which emits the same stable schema) — never the raw
// struct, whose Strategy/Parallel fields are internal pointer graphs.
func SearchGraph(g *graph.Graph, gpus int, opts ...Options) (*Result, error) {
	e := defaultEngine()
	cfg := e.base
	if len(opts) > 0 {
		cfg = e.base.overlay(opts[0])
	}
	cfg.skipCache = true // preserve the caller-owned, mutable Result contract
	return e.searchGraph(context.Background(), g.Name, g, gpus, cfg)
}

// SearchSpec names one search of a batch: a registered model (or a
// pre-built graph) and a GPU count, with optional per-search options.
type SearchSpec struct {
	// Model is a registered model name (see Models). Ignored when Graph
	// is set.
	Model string
	// Graph, when non-nil, is searched directly instead of building
	// Model — the path for custom graphio specs.
	Graph *graph.Graph
	// SpecText, when set alongside Graph, is the graphio source Graph
	// was parsed from. It gives a task-shipping engine (WithTaskRunner)
	// the wire form a remote executor needs to rebuild the graph; a
	// Graph without it always searches locally.
	SpecText string
	// GPUs is the total device count for this search.
	GPUs int
	// Options overrides the per-search options (nil = defaults). A zero
	// Options.Workers is resolved by SearchAll to an even share of
	// GOMAXPROCS across the batch, so the pools do not multiply; set it
	// explicitly only when one search should claim more than its share.
	Options *Options
	// Progress, when set, observes exactly this search's progress events
	// — never another concurrent caller's — in addition to the
	// engine-level WithProgress observer. Events of one search are
	// serialized; the callback must return quickly and must not call
	// back into the Engine. Cache and store hits skip the pipeline and
	// emit nothing, and a call that joins an identical in-flight search
	// receives no events (the leader's observer does).
	Progress func(ProgressEvent)
}

// SearchAll runs many searches concurrently across a bounded worker pool.
//
// Deprecated: use Engine.SearchAll, which takes a context for
// cancellation and serves repeat searches from the result cache. This
// wrapper bypasses the cache, preserving the historical contract that
// every call returns fresh, caller-owned Results. To send Results
// across a process boundary, serialize them with Result.Summary (or
// json.Marshal, which emits the same stable schema) — never the raw
// structs, whose Strategy/Parallel fields are internal pointer graphs.
func SearchAll(specs []SearchSpec) ([]*Result, error) {
	e := defaultEngine()
	cfg := e.base
	cfg.skipCache = true // preserve the caller-owned, mutable Result contract
	return e.searchAll(context.Background(), specs, cfg)
}

// specName renders the model identity of a spec for error messages.
func specName(s SearchSpec) string {
	if s.Graph != nil {
		return s.Graph.Name
	}
	return s.Model
}

// Baselines enumerates the comparison planners accepted by Baseline.
func Baselines() []string {
	return []string{"dp", "deepspeed", "megatron", "ffn-only", "mha-only", "gshard", "alpa", "flexflow"}
}

// Baseline derives a plan for the model with one of the paper's
// comparison systems and simulates it on the same cluster preset.
//
// Deprecated: use Engine.Baseline, which takes a context for
// cancellation and serves repeat searches from the result cache. This
// wrapper bypasses the cache, preserving the historical contract that
// every call returns a fresh, caller-owned Result. To send a Result
// across a process boundary, serialize it with Result.Summary (or
// json.Marshal, which emits the same stable schema) — never the raw
// struct, whose Strategy/Parallel fields are internal pointer graphs.
func Baseline(name, modelName string, gpus int, opts ...Options) (*Result, error) {
	g, err := models.Build(modelName)
	if err != nil {
		return nil, err
	}
	e := defaultEngine()
	cfg := e.base
	if len(opts) > 0 {
		cfg = e.base.overlay(opts[0])
	}
	cfg.skipCache = true // preserve the caller-owned, mutable Result contract
	return e.baselineGraph(context.Background(), name, modelName, g, gpus, cfg)
}

// BaselineGraph is Baseline for an arbitrary graph.
//
// Deprecated: use Engine.BaselineGraph, which takes a context for
// cancellation and serves repeat searches from the result cache. This
// wrapper bypasses the cache, preserving the historical contract that
// every call returns a fresh, caller-owned Result. To send a Result
// across a process boundary, serialize it with Result.Summary (or
// json.Marshal, which emits the same stable schema) — never the raw
// struct, whose Strategy/Parallel fields are internal pointer graphs.
func BaselineGraph(name string, g *graph.Graph, gpus int, opts ...Options) (*Result, error) {
	e := defaultEngine()
	cfg := e.base
	if len(opts) > 0 {
		cfg = e.base.overlay(opts[0])
	}
	cfg.skipCache = true // preserve the caller-owned, mutable Result contract
	return e.baselineGraph(context.Background(), name, g.Name, g, gpus, cfg)
}
