package main

import (
	"strings"
	"testing"
)

func rec(searches ...searchRecord) benchRecord {
	return benchRecord{SchemaVersion: 1, Searches: searches}
}

func sr(model string, coldMS float64) searchRecord {
	return searchRecord{
		Model: model, GPUs: 8, ColdMS: coldMS, WarmCacheHit: true,
		CostSeconds: 0.5, TFLOPsPerGPU: 4.0,
	}
}

func failures(results []gateResult) []gateResult {
	var out []gateResult
	for _, r := range results {
		if r.Failed {
			out = append(out, r)
		}
	}
	return out
}

func TestGateIdenticalRecordsPass(t *testing.T) {
	r := rec(sr("a", 100), sr("b", 200), sr("c", 50))
	results, scale, err := gate(r, r, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1.0 {
		t.Fatalf("scale = %v, want 1", scale)
	}
	if f := failures(results); len(f) != 0 {
		t.Fatalf("identical records failed the gate: %+v", f)
	}
}

func TestGateUniformSlowdownCalibratesAway(t *testing.T) {
	// The candidate ran on a machine 2x slower across the board; with
	// calibration that must pass, without it every model must fail.
	base := rec(sr("a", 100), sr("b", 200), sr("c", 50))
	cand := rec(sr("a", 200), sr("b", 400), sr("c", 100))

	results, scale, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 2.0 {
		t.Fatalf("scale = %v, want 2", scale)
	}
	if f := failures(results); len(f) != 0 {
		t.Fatalf("uniform slowdown failed the calibrated gate: %+v", f)
	}

	results, _, err = gate(base, cand, 0.10, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if f := failures(results); len(f) != 3 {
		t.Fatalf("raw gate passed a 2x slowdown: %d/3 failed", len(f))
	}
}

func TestGateSingleModelRegressionFails(t *testing.T) {
	// One model 2x slower against stable siblings: the median stays at
	// 1 and the outlier must fail even in calibrated mode.
	base := rec(sr("a", 100), sr("b", 200), sr("c", 50))
	cand := rec(sr("a", 100), sr("b", 400), sr("c", 50))
	results, _, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	f := failures(results)
	if len(f) != 1 || f[0].Model != "b" {
		t.Fatalf("want exactly model b failing, got %+v", f)
	}
	if !strings.Contains(strings.Join(f[0].Reasons, " "), "cold_ms") {
		t.Fatalf("failure reason does not name cold_ms: %v", f[0].Reasons)
	}
}

func TestGateWithinToleranceSlowdownPasses(t *testing.T) {
	base := rec(sr("a", 100), sr("b", 200), sr("c", 50))
	cand := rec(sr("a", 100), sr("b", 215), sr("c", 50)) // +7.5%
	results, _, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if f := failures(results); len(f) != 0 {
		t.Fatalf("within-tolerance slowdown failed: %+v", f)
	}
}

func TestGateWarmCacheMissFails(t *testing.T) {
	base := rec(sr("a", 100), sr("b", 200))
	cand := rec(sr("a", 100), sr("b", 200))
	cand.Searches[1].WarmCacheHit = false
	results, _, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	f := failures(results)
	if len(f) != 1 || f[0].Model != "b" {
		t.Fatalf("want model b failing on cache miss, got %+v", f)
	}
}

func TestGateQualityDriftFails(t *testing.T) {
	base := rec(sr("a", 100), sr("b", 200))
	cand := rec(sr("a", 100), sr("b", 200))
	cand.Searches[0].CostSeconds *= 1.01 // 1% worse plan: deterministic search, must fail
	results, _, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	f := failures(results)
	if len(f) != 1 || f[0].Model != "a" {
		t.Fatalf("want model a failing on cost drift, got %+v", f)
	}
	if !strings.Contains(strings.Join(f[0].Reasons, " "), "cost_seconds") {
		t.Fatalf("failure reason does not name cost_seconds: %v", f[0].Reasons)
	}
}

func TestGateDisjointModelsDoNotFail(t *testing.T) {
	// A model only in the baseline (retired) or only in the candidate
	// (matrix grew) is skipped; the shared pair still gates.
	base := rec(sr("a", 100), sr("old", 500))
	cand := rec(sr("a", 100), sr("new", 10))
	results, _, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Model != "a" {
		t.Fatalf("want exactly the shared pair gated, got %+v", results)
	}
	if f := failures(results); len(f) != 0 {
		t.Fatalf("shared pair failed: %+v", f)
	}
}

func TestGateEmptyIntersectionErrors(t *testing.T) {
	if _, _, err := gate(rec(sr("a", 100)), rec(sr("b", 100)), 0.10, 20, true); err == nil {
		t.Fatal("empty intersection did not error")
	}
}

func TestGateBadSchemaErrors(t *testing.T) {
	bad := rec(sr("a", 100))
	bad.SchemaVersion = 2
	if _, _, err := gate(bad, rec(sr("a", 100)), 0.10, 20, true); err == nil {
		t.Fatal("schema_version 2 baseline did not error")
	}
}

func TestGateMillisecondNoiseBelowFloorPasses(t *testing.T) {
	// A 4ms search doubling is a scheduler hiccup, not a regression:
	// the ratio overrun is ignored while the absolute slowdown stays
	// under the floor. With the floor at zero the same pair must fail.
	base := rec(sr("a", 100), sr("b", 200), sr("tiny", 3.6))
	cand := rec(sr("a", 100), sr("b", 200), sr("tiny", 7.5))
	results, _, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if f := failures(results); len(f) != 0 {
		t.Fatalf("sub-floor millisecond noise failed the gate: %+v", f)
	}

	results, _, err = gate(base, cand, 0.10, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	f := failures(results)
	if len(f) != 1 || f[0].Model != "tiny" {
		t.Fatalf("zero floor: want model tiny failing, got %+v", f)
	}
}

func TestGateEvenPairCountMedian(t *testing.T) {
	// Two pairs at ratios 1.0 and 3.0: median 2.0, so both sit within
	// 2.0*(1+tol)... the 3.0 ratio exceeds 2.2 and fails. This pins the
	// even-length median (mean of the middle two).
	base := rec(sr("a", 100), sr("b", 100))
	cand := rec(sr("a", 100), sr("b", 300))
	results, scale, err := gate(base, cand, 0.10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 2.0 {
		t.Fatalf("scale = %v, want 2 (mean of 1 and 3)", scale)
	}
	f := failures(results)
	if len(f) != 1 || f[0].Model != "b" {
		t.Fatalf("want model b failing, got %+v", f)
	}
}
