// Command tapas-benchgate compares two machine-readable benchmark
// records (the -json output of tapas-bench) and exits non-zero when the
// candidate regresses against the baseline — the CI teeth for the
// tracked BENCH_*.json records, which until now were only validated and
// archived.
//
// Searches are aligned by (model, gpus). For each pair the gate checks:
//
//   - cold_ms: the candidate's cold search may not be more than
//     -tolerance (default 10%) slower than the baseline, after
//     calibration (below). Ratios alone are meaningless on
//     millisecond-scale searches — a scheduler hiccup doubles a 4ms
//     measurement — so a pair additionally only fails when the
//     absolute slowdown beyond the calibrated expectation exceeds
//     -min-delta-ms (default 20ms).
//   - warm_cache_hit: must be true in the candidate — a cold repeat is
//     a cache regression regardless of timing.
//   - cost_seconds / tflops_per_gpu: the search is deterministic, so
//     plan quality must match the baseline almost exactly (0.1%); a
//     drift here is a search regression, not noise.
//
// Raw wall-clock comparisons across machines are meaningless: the CI
// runner of the day may be uniformly 2x slower than the machine that
// wrote the baseline. With -calibrate (the default), the gate first
// estimates the machine-speed ratio as the median of the per-model
// cold_ms ratios (candidate/baseline) and then flags only models whose
// ratio exceeds median*(1+tolerance) — a uniform slowdown moves the
// median and cancels out, while a single model regressing stands out
// against its siblings. -calibrate=false compares raw ratios against
// 1+tolerance, for same-machine A/B runs.
//
// Models present in only one record are reported but do not fail the
// gate (the tracked matrix may grow); an empty intersection does.
//
// Usage:
//
//	tapas-benchgate -baseline BENCH_7.json -candidate bench.json
//	tapas-benchgate -baseline old.json -candidate new.json -tolerance 0.05 -calibrate=false
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// benchRecord mirrors the fields of tapas-bench's -json record the
// gate consumes; unknown fields are ignored so additive schema changes
// don't break old gates.
type benchRecord struct {
	SchemaVersion int            `json:"schema_version"`
	Searches      []searchRecord `json:"searches"`
}

type searchRecord struct {
	Model        string  `json:"model"`
	GPUs         int     `json:"gpus"`
	ColdMS       float64 `json:"cold_ms"`
	WarmCacheHit bool    `json:"warm_cache_hit"`
	CostSeconds  float64 `json:"cost_seconds"`
	TFLOPsPerGPU float64 `json:"tflops_per_gpu"`
	// Cold-search phase split, so a cold_ms regression names the guilty
	// phase instead of just the total. Zero means the record predates
	// the columns and the attribution is skipped.
	MineMS     float64 `json:"mine_ms"`
	EnumMS     float64 `json:"enum_ms"`
	AssembleMS float64 `json:"assemble_ms"`
	// Deterministic search-shape counters: identical plans must examine
	// the same candidates, fold the same classes, and mine the same
	// number of Apriori levels. Zero means the record predates the
	// column and the check is skipped.
	Examined   int `json:"examined"`
	Classes    int `json:"classes"`
	MineLevels int `json:"mine_levels"`
}

// gateResult is the verdict for one aligned (model, gpus) pair.
type gateResult struct {
	Model   string
	GPUs    int
	Ratio   float64 // candidate cold_ms / baseline cold_ms
	Split   string  // candidate enum/assemble split, "" when absent
	Failed  bool
	Reasons []string
}

// qualityEpsilon bounds the relative drift allowed in the deterministic
// plan-quality fields (cost_seconds, tflops_per_gpu).
const qualityEpsilon = 1e-3

// gate aligns the two records by (model, gpus) and applies the checks.
// It returns the per-pair verdicts, the calibration scale used (1 when
// calibrate is false), and an error only for structural problems (bad
// schema, empty intersection) — regressions are reported via Failed.
func gate(baseline, candidate benchRecord, tolerance, minDeltaMS float64, calibrate bool) ([]gateResult, float64, error) {
	if baseline.SchemaVersion != 1 || candidate.SchemaVersion != 1 {
		return nil, 0, fmt.Errorf("unsupported schema_version (baseline=%d candidate=%d, want 1)",
			baseline.SchemaVersion, candidate.SchemaVersion)
	}
	type key struct {
		model string
		gpus  int
	}
	base := make(map[key]searchRecord, len(baseline.Searches))
	for _, s := range baseline.Searches {
		base[key{s.Model, s.GPUs}] = s
	}

	var pairs []gateResult
	var cands []searchRecord
	for _, s := range candidate.Searches {
		b, ok := base[key{s.Model, s.GPUs}]
		if !ok {
			continue
		}
		if b.ColdMS <= 0 {
			return nil, 0, fmt.Errorf("%s/%d: baseline cold_ms %.3f is not positive", s.Model, s.GPUs, b.ColdMS)
		}
		split := ""
		if s.MineMS+s.EnumMS+s.AssembleMS > 0 {
			split = fmt.Sprintf(" (mine %.1f enum %.1f assemble %.1f ms)", s.MineMS, s.EnumMS, s.AssembleMS)
		}
		pairs = append(pairs, gateResult{Model: s.Model, GPUs: s.GPUs, Ratio: s.ColdMS / b.ColdMS, Split: split})
		cands = append(cands, s)
	}
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("no (model, gpus) pairs in common between baseline and candidate")
	}

	scale := 1.0
	if calibrate {
		ratios := make([]float64, len(pairs))
		for i, p := range pairs {
			ratios[i] = p.Ratio
		}
		sort.Float64s(ratios)
		if n := len(ratios); n%2 == 1 {
			scale = ratios[n/2]
		} else {
			scale = (ratios[n/2-1] + ratios[n/2]) / 2
		}
	}

	limit := scale * (1 + tolerance)
	for i := range pairs {
		p := &pairs[i]
		s, b := cands[i], base[key{p.Model, p.GPUs}]
		if delta := s.ColdMS - scale*b.ColdMS; p.Ratio > limit && delta > minDeltaMS {
			p.Failed = true
			p.Reasons = append(p.Reasons, fmt.Sprintf(
				"cold_ms %.3f vs baseline %.3f: ratio %.3f exceeds limit %.3f (scale %.3f, tolerance %.0f%%), +%.3fms over floor %.0fms",
				s.ColdMS, b.ColdMS, p.Ratio, limit, scale, tolerance*100, delta, minDeltaMS))
			if phase, ok := guiltyPhase(b, s, scale); ok {
				p.Reasons = append(p.Reasons, phase)
			}
		}
		if !s.WarmCacheHit {
			p.Failed = true
			p.Reasons = append(p.Reasons, "warm repeat missed the cache")
		}
		if drift := relDrift(s.CostSeconds, b.CostSeconds); drift > qualityEpsilon {
			p.Failed = true
			p.Reasons = append(p.Reasons, fmt.Sprintf(
				"cost_seconds drifted %.4g -> %.4g (the search is deterministic; this is a plan change)",
				b.CostSeconds, s.CostSeconds))
		}
		if drift := relDrift(s.TFLOPsPerGPU, b.TFLOPsPerGPU); drift > qualityEpsilon {
			p.Failed = true
			p.Reasons = append(p.Reasons, fmt.Sprintf(
				"tflops_per_gpu drifted %.4g -> %.4g", b.TFLOPsPerGPU, s.TFLOPsPerGPU))
		}
		// The counters are exact: any difference is a search-shape change,
		// not noise. Skipped when the baseline predates the column.
		exact := []struct {
			name       string
			base, cand int
		}{
			{"examined", b.Examined, s.Examined},
			{"classes", b.Classes, s.Classes},
			{"mine_levels", b.MineLevels, s.MineLevels},
		}
		for _, e := range exact {
			if e.base != 0 && e.base != e.cand {
				p.Failed = true
				p.Reasons = append(p.Reasons, fmt.Sprintf(
					"%s changed %d -> %d (deterministic counter; the search explored a different space)",
					e.name, e.base, e.cand))
			}
		}
	}
	return pairs, scale, nil
}

// guiltyPhase attributes a cold_ms regression to the pipeline phase
// that grew the most beyond the calibrated expectation, so the report
// names enum vs assemble (vs mine) instead of just the total. Returns
// ok=false when either record predates the phase columns.
func guiltyPhase(b, s searchRecord, scale float64) (string, bool) {
	if b.MineMS+b.EnumMS+b.AssembleMS == 0 || s.MineMS+s.EnumMS+s.AssembleMS == 0 {
		return "", false
	}
	phases := []struct {
		name       string
		base, cand float64
	}{
		{"mine", b.MineMS, s.MineMS},
		{"enum", b.EnumMS, s.EnumMS},
		{"assemble", b.AssembleMS, s.AssembleMS},
	}
	worst := phases[0]
	worstDelta := worst.cand - scale*worst.base
	for _, ph := range phases[1:] {
		if d := ph.cand - scale*ph.base; d > worstDelta {
			worst, worstDelta = ph, d
		}
	}
	return fmt.Sprintf(
		"slowdown concentrates in the %s phase: %s_ms %.3f -> %.3f (+%.3fms beyond scale; mine %.3f->%.3f enum %.3f->%.3f assemble %.3f->%.3f)",
		worst.name, worst.name, worst.base, worst.cand, worstDelta,
		b.MineMS, s.MineMS, b.EnumMS, s.EnumMS, b.AssembleMS, s.AssembleMS), true
}

// relDrift is |a-b| relative to the larger magnitude; 0 when both are 0.
func relDrift(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m <= 0 {
		return 0
	}
	return d / m
}

func loadRecord(path string) (benchRecord, error) {
	var r benchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline benchmark record (required)")
	candidatePath := flag.String("candidate", "", "candidate benchmark record (required)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed cold_ms slowdown beyond the calibration scale")
	minDeltaMS := flag.Float64("min-delta-ms", 20, "absolute cold_ms slowdown below which a ratio overrun is treated as noise")
	calibrate := flag.Bool("calibrate", true, "cancel uniform machine-speed differences via the median cold_ms ratio")
	flag.Parse()

	log.SetPrefix("tapas-benchgate: ")
	log.SetFlags(0)
	if *baselinePath == "" || *candidatePath == "" {
		log.Printf("both -baseline and -candidate are required")
		os.Exit(2)
	}

	baseline, err := loadRecord(*baselinePath)
	if err != nil {
		log.Printf("%v", err)
		os.Exit(2)
	}
	candidate, err := loadRecord(*candidatePath)
	if err != nil {
		log.Printf("%v", err)
		os.Exit(2)
	}

	results, scale, err := gate(baseline, candidate, *tolerance, *minDeltaMS, *calibrate)
	if err != nil {
		log.Printf("%v", err)
		os.Exit(2)
	}

	failed := 0
	for _, r := range results {
		status := "ok"
		if r.Failed {
			status = "FAIL"
			failed++
		}
		log.Printf("%-4s %s/%dgpu ratio %.3f%s", status, r.Model, r.GPUs, r.Ratio, r.Split)
		for _, reason := range r.Reasons {
			log.Printf("     %s", reason)
		}
	}
	log.Printf("%d/%d pairs passed (calibration scale %.3f)", len(results)-failed, len(results), scale)
	if failed > 0 {
		os.Exit(1)
	}
}
