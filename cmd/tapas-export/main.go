// Command tapas-export derives a strategy and writes it as JSON or as a
// Graphviz DOT drawing of the annotated GraphNode graph. Ctrl-C cancels
// the search; -timeout bounds it.
//
// Usage:
//
//	tapas-export -model t5-770M -gpus 8 -format json > plan.json
//	tapas-export -model resnet-228M -format dot | dot -Tsvg > plan.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"tapas"
	"tapas/internal/cli"
	"tapas/internal/export"
	"tapas/internal/sim"
)

func main() {
	model := flag.String("model", "t5-770M", "model name")
	gpus := flag.Int("gpus", 8, "total GPU count")
	format := flag.String("format", "json", "output format: json, dot, or trace (Chrome tracing timeline)")
	baseline := flag.String("baseline", "", "export a baseline plan instead of the TAPAS result")
	timeout := flag.Duration("timeout", 0, "abort the search after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	eng := tapas.NewEngine()
	var (
		res *tapas.Result
		err error
	)
	if *baseline != "" {
		res, err = eng.Baseline(ctx, *baseline, *model, *gpus)
	} else {
		res, err = eng.Search(ctx, *model, *gpus)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cli.ExitCode(err))
	}

	switch *format {
	case "json":
		err = export.WriteStrategyJSON(os.Stdout, res.Strategy)
	case "dot":
		err = export.WriteDOT(os.Stdout, res.Strategy.Graph, res.Strategy)
	case "trace":
		tl := sim.BuildTimeline(res.Strategy, sim.DefaultConfig(tapas.NewCluster(*gpus)))
		err = tl.WriteChromeTrace(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q (json, dot, or trace)", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
