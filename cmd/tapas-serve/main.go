// Command tapas-serve is the TAPAS HTTP daemon: a long-running server
// wrapping one shared search Engine, so the result cache and
// singleflight dedupe serve repeat traffic in microseconds.
//
// Endpoints (all JSON, schema v1 — see docs/api-v1.md):
//
//	POST   /v1/search           synchronous search
//	POST   /v1/search:batch     many searches in one call, positional results
//	POST   /v1/tasks            execute shipped prefix tasks (distributed cold search)
//	POST   /v1/jobs             submit an async job (202 + job status)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status (result embedded when done)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events SSE stream of progress + state events
//	GET    /v1/models           registered model names
//	GET    /v1/healthz          queue, worker, cache and store statistics
//	GET    /v1/store[/{id}]     store peer protocol (replicas sharing the corpus)
//	GET    /v1/traces[/{id}]    trace flight recorder (see -trace-sample)
//	GET    /metrics             Prometheus text metrics
//
// With -store-dir the daemon persists every searched plan to a
// file-backed store and serves repeat traffic from it across restarts
// (store_hit: true): hit precedence is memory cache → store → search.
// It also makes jobs durable: every submission and state transition is
// persisted under <store-dir>/jobs (override with -jobs-dir, which also
// works without a plan store), and at startup the daemon adopts orphaned
// queued/running jobs left by a crash or kill -9 — re-enqueuing them
// under their original IDs, so accepted work always reaches a terminal
// state. healthz reports the adoption count as jobs_adopted.
// The corpus doubles as the fleet's shared plan store: peers started
// with -store-peer http://this-daemon:8080 read and write it through
// the /v1/store endpoints, so a cold search by any replica warms all of
// them. -store-gc-age compacts the corpus by deleting records unused
// for longer than the bound (at open and on a timer). GET /metrics
// exposes the cache/store/queue counters in Prometheus text form.
//
// Combining -store-dir with one or more -store-peer flags (repeatable)
// replicates the corpus instead of sharing a single owner's: every
// searched plan is written locally and fanned out write-behind to each
// peer, local read misses fall through to peers with read-repair, and
// an anti-entropy sweep (-store-sweep-interval) reconciles divergence
// in both directions — so killing any replica, including a record's
// original writer, loses no warm state. Dead peers are skipped and
// re-probed in the background (-store-probe-interval); healthz reports
// a replication block and /metrics the tapas_replicate_* families.
//
// With -fleet the daemon becomes a distributed-cold-search coordinator:
// a cold search splits its enumeration into prefix tasks and scatters
// them across the listed peers over POST /v1/tasks, retrying and
// falling back to the local pool on peer failure, with the final plan
// bit-identical to a single-process search. Every daemon serves
// /v1/tasks unconditionally, so any replica can execute for any
// coordinator. healthz reports tasks_executed/tasks_failed (executor
// side) and a fleet block (coordinator side); /metrics mirrors both.
//
// SIGINT/SIGTERM drain gracefully: intake stops (new requests get JSON
// 503 bodies), running jobs get -drain-timeout to finish, then their
// contexts are cancelled; the plan store's write-behind queue is
// drained before exit.
//
// Usage:
//
//	tapas-serve -addr :8080
//	tapas-serve -addr :8080 -store-dir /var/lib/tapas/plans
//	tapas-serve -addr :8080 -fleet http://replica-b:8080,http://replica-c:8080
//	tapas-serve -addr :8080 -queue 128 -job-workers 4 -cache 256 -drain-timeout 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tapas"
	"tapas/internal/cli"
	"tapas/internal/logkv"
	"tapas/internal/trace"
	"tapas/service"
	"tapas/service/dispatch"
	"tapas/store"
	"tapas/store/remotebackend"
	"tapas/store/replicate"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "async job queue capacity (submissions beyond it get 429)")
	jobWorkers := flag.Int("job-workers", 2, "jobs run concurrently")
	workers := flag.Int("workers", 0, "search worker goroutines per job (0 = GOMAXPROCS)")
	cache := flag.Int("cache", tapas.DefaultCacheSize, "result cache entries (0 disables)")
	storeDir := flag.String("store-dir", "", "persistent plan store directory; searches survive restarts (empty disables)")
	var storePeers cli.StringList
	flag.Var(&storePeers, "store-peer", "peer daemon URL sharing the plan corpus (repeatable, commas allowed). Alone: read/write that peer's corpus. With -store-dir: replicate — writes fan out to every peer, reads fall through with read-repair, anti-entropy keeps all replicas converged")
	storeMax := flag.Int("store-max", store.DefaultMaxEntries, "plan store record bound (LRU eviction past it)")
	storeGCAge := flag.Duration("store-gc-age", 0, "delete store records unused for longer than this, at open and on a timer (0 disables GC; incompatible with -store-peer)")
	storeGCInterval := flag.Duration("store-gc-interval", 0, "store GC timer period (0 = age/4, clamped to [1s, 1h])")
	storeSweep := flag.Duration("store-sweep-interval", 30*time.Second, "anti-entropy sweep period of a replicated corpus (0 disables; only with -store-dir plus -store-peer)")
	storeProbe := flag.Duration("store-probe-interval", 3*time.Second, "how often a down replication peer is re-probed")
	jobsDir := flag.String("jobs-dir", "", "durable job record directory; queued/running jobs survive restarts (default <store-dir>/jobs when -store-dir is set, empty disables)")
	maxFinished := flag.Int("max-finished", 256, "finished jobs retained for status polling")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs and in-flight requests before cancelling them")
	progress := flag.Bool("progress", false, "log engine progress events")
	fleet := flag.String("fleet", "", "comma-separated peer daemon URLs to scatter cold searches across (e.g. http://replica-b:8080,http://replica-c:8080)")
	taskTimeout := flag.Duration("task-timeout", 2*time.Minute, "per-peer deadline of one scattered task batch (with -fleet)")
	pprofAddr := flag.String("pprof-addr", "", "listen address of the pprof debug server (empty disables)")
	traceSample := flag.Int("trace-sample", 0, "record 1 in N untraced requests in the flight recorder (0 disables sampling; requests arriving with X-Tapas-Trace are always recorded)")
	traceSlow := flag.Duration("trace-slow", 0, "log a slow_request line for searches at least this long (0 disables)")
	logRequests := flag.Bool("log-requests", false, "log one key=value line per request")
	flag.Parse()

	log.SetPrefix("tapas-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	rec := trace.NewRecorder(trace.Config{Process: "tapas-serve" + *addr, SampleEvery: *traceSample})
	cfg := service.Config{
		EngineOptions: []tapas.Option{
			tapas.WithWorkers(*workers),
			tapas.WithCache(*cache),
		},
		QueueSize:   *queue,
		JobWorkers:  *jobWorkers,
		MaxFinished: *maxFinished,
		Trace:       rec,
		TraceSlow:   *traceSlow,
		Logf:        log.Printf,
		LogRequests: *logRequests,
	}
	if len(storePeers) > 0 && *storeGCAge > 0 {
		log.Printf("-store-gc-age cannot run against a shared or replicated corpus; GC only an exclusively-owned -store-dir")
		os.Exit(2)
	}
	if *storeDir == "" && len(storePeers) > 1 {
		log.Printf("replicating across %d peers needs a local corpus: add -store-dir (a single -store-peer reads a shared corpus without one)", len(storePeers))
		os.Exit(2)
	}
	var st *store.Store
	var repl *replicate.Backend
	if *storeDir != "" || len(storePeers) > 0 {
		opts := store.Options{
			Dir:        *storeDir,
			MaxEntries: *storeMax,
			GCAge:      *storeGCAge,
			GCInterval: *storeGCInterval,
			OnCorrupt: func(path string, err error) {
				log.Printf("store: skipping unreadable record %s: %v", path, err)
			},
		}
		where := *storeDir
		switch {
		case *storeDir == "":
			// Legacy shared mode: no local bytes, one peer owns the corpus.
			opts.Backend = remotebackend.New(storePeers[0])
			opts.Shared = true
			where = storePeers[0]
		case len(storePeers) > 0:
			// Replicated corpus: this daemon owns bytes locally AND fans
			// writes out to every peer; reads fall through with
			// read-repair and anti-entropy converges divergence.
			local, err := store.NewFS(*storeDir)
			if err != nil {
				log.Printf("opening plan store: %v", err)
				os.Exit(1)
			}
			ropts := replicate.Options{
				Local:         local,
				SweepInterval: *storeSweep,
				ProbeInterval: *storeProbe,
				Logf:          log.Printf,
				Trace:         rec,
			}
			for _, u := range storePeers {
				ropts.Peers = append(ropts.Peers, replicate.Peer{Name: u, Backend: remotebackend.New(u)})
			}
			repl, err = replicate.New(ropts)
			if err != nil {
				log.Printf("opening replicated plan store: %v", err)
				os.Exit(1)
			}
			opts.Backend = repl
			// Shared: peers' fanout writes and sweep-landed records must
			// be visible past this process's index.
			opts.Shared = true
			where = fmt.Sprintf("%s (replicated to %s)", *storeDir, strings.Join(storePeers, ", "))
		}
		var err error
		st, err = store.Open(opts)
		if err != nil {
			log.Printf("opening plan store: %v", err)
			os.Exit(1)
		}
		log.Printf("plan store %s: %d records", where, st.Len())
		cfg.EngineOptions = append(cfg.EngineOptions, tapas.WithStore(st))
		if repl != nil {
			cfg.Replication = repl
		}
	}
	if *progress {
		cfg.OnProgress = func(ev tapas.ProgressEvent) {
			log.Printf("%s", logkv.Line("progress",
				"model", ev.Model,
				"gpus", ev.GPUs,
				"phase", ev.Phase,
				"kind", ev.Kind,
				"classes", fmt.Sprintf("%d/%d", ev.ClassesDone, ev.ClassesTotal),
				"examined", ev.Examined,
			))
		}
	}
	jdir := *jobsDir
	if jdir == "" && *storeDir != "" {
		jdir = filepath.Join(*storeDir, "jobs")
	}
	if jdir != "" {
		jb, err := store.NewFS(jdir)
		if err != nil {
			log.Printf("opening job store: %v", err)
			os.Exit(1)
		}
		cfg.JobsBackend = jb
		cfg.OnJobCorrupt = func(id string, err error) {
			log.Printf("jobs: record %s: %v", id, err)
		}
	}
	var coord *dispatch.Coordinator
	if *fleet != "" {
		var peers []string
		for _, u := range strings.Split(*fleet, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peers = append(peers, u)
			}
		}
		coord = dispatch.New(dispatch.Options{
			Peers:       peers,
			TaskTimeout: *taskTimeout,
			Logf:        log.Printf,
		})
		defer coord.Close()
		cfg.EngineOptions = append(cfg.EngineOptions, tapas.WithTaskRunner(coord.Runner))
		cfg.Fleet = coord
		log.Printf("scattering cold searches across %d peers (task-timeout %v)", len(peers), *taskTimeout)
	}
	cli.ServePprof(*pprofAddr, log.Printf)
	svc, err := service.New(cfg)
	if err != nil {
		log.Printf("loading durable jobs: %v", err)
		os.Exit(1)
	}
	if jdir != "" {
		st := svc.Stats()
		log.Printf("durable jobs %s: %d records, %d adopted", jdir, st.JobStore.Records, st.JobsAdopted)
	}

	// baseCtx parents every request context; cancelling it is the
	// hard stop that unblocks still-streaming SSE handlers and
	// still-computing sync searches once the drain deadline passes.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     service.NewHandler(svc),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue=%d job-workers=%d cache=%d)", *addr, *queue, *jobWorkers, *cache)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Printf("listener failed: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("shutting down: draining for up to %v", *drainTimeout)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()

	// Drain the job queue and the HTTP listener concurrently: SSE
	// streams of running jobs only end when those jobs finish, so
	// neither drain strictly precedes the other.
	svcDone := make(chan error, 1)
	go func() { svcDone <- svc.Shutdown(drainCtx) }()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain deadline passed, cancelling in-flight requests")
		baseCancel()
		_ = srv.Close()
	}
	if err := <-svcDone; err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("job drain cut short: %v", err)
	}
	// The listener goroutine reports http.ErrServerClosed on a clean
	// Shutdown; consume it so nothing leaks.
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
	}
	if st != nil {
		// Drain the write-behind queue so plans searched moments before
		// the shutdown survive into the next process.
		_ = st.Close()
	}
	if repl != nil {
		// Then drain the replication fanout queues, so those same plans
		// also reach the peers before this process exits.
		_ = repl.Close()
	}
	log.Printf("bye")
}
