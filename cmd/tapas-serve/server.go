package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"tapas/service"
)

// maxRequestBytes bounds request bodies (inline graphio specs included).
const maxRequestBytes = 8 << 20

// newMux wires the v1 routes onto a fresh ServeMux. Split from main so
// the handler stack is testable with httptest.
func newMux(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req service.SearchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := svc.Search(r.Context(), req)
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/search:batch", func(w http.ResponseWriter, r *http.Request) {
		var req service.BatchSearchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := svc.SearchBatch(r.Context(), req)
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req service.SearchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		st, err := svc.Submit(req)
		if err != nil {
			writeError(w, r, err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": svc.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := svc.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := svc.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(svc, w, r)
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": svc.Models()})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		stats := svc.Stats()
		status := "ok"
		if stats.Draining {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			service.Stats
		}{Status: status, Stats: stats})
	})
	return mux
}

// serveEvents streams a job's events as Server-Sent Events until the
// job reaches a terminal state (the subscription channel closes) or the
// client disconnects.
func serveEvents(svc *service.Service, w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := svc.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}

// decodeJSON parses the request body into dst, answering 400 on
// malformed input. Returns false when a response was already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("invalid request body: %v", err)))
		return false
	}
	return true
}

// errBody is the JSON error envelope of every non-2xx response.
func errBody(msg string) map[string]string { return map[string]string{"error": msg} }

// writeError maps the service error taxonomy onto HTTP statuses, always
// with a JSON body — including requests cut short by shutdown. The
// mapping itself lives in service.ErrorStatus, shared with the
// per-item statuses of batch responses.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	writeJSON(w, service.ErrorStatus(err), errBody(err.Error()))
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
