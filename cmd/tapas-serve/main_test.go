package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tapas"
	"tapas/service"
	"tapas/store"
)

// newTestServer boots the full handler stack over a fresh service.
func newTestServer(t *testing.T, cfg ...service.Config) (*httptest.Server, *service.Client) {
	t.Helper()
	var c service.Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	svc, err := service.New(c)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, service.NewClient(srv.URL)
}

func TestHTTPSyncSearchAndCacheHit(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	req := service.SearchRequest{Model: "t5-100M", GPUs: 8}

	cold, err := c.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SchemaVersion != service.SchemaVersion || cold.CacheHit {
		t.Fatalf("cold response wrong: version=%d hit=%v", cold.SchemaVersion, cold.CacheHit)
	}
	if cold.Plan == nil || len(cold.Plan.Assignments) == 0 {
		t.Fatal("plan missing from response")
	}
	warm, err := c.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("repeated POST /v1/search must be served from the cache")
	}
	if warm.PlanSummary != cold.PlanSummary {
		t.Errorf("cached plan %q != cold %q", warm.PlanSummary, cold.PlanSummary)
	}
}

func TestHTTPErrorBodies(t *testing.T) {
	srv, c := newTestServer(t)
	ctx := context.Background()

	// Validation error → 400 with JSON body.
	_, err := c.Search(ctx, service.SearchRequest{GPUs: 8})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if apiErr.Message == "" {
		t.Error("error body carried no message")
	}

	// Unknown job → 404.
	_, err = c.Job(ctx, "job-does-not-exist")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("want 404, got %v", err)
	}

	// Malformed JSON → 400 with JSON body.
	resp, err := http.Post(srv.URL+"/v1/search", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Errorf("malformed body: no JSON error envelope (%v)", err)
	}
}

// TestHTTPUnknownModelIs404: the model name space is enumerable via
// GET /v1/models, so a miss answers 404 — not 400, not 500 — on both
// the sync and async paths.
func TestHTTPUnknownModelIs404(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	var apiErr *service.APIError
	_, err := c.Search(ctx, service.SearchRequest{Model: "nope-13B", GPUs: 8})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("sync search: want 404 APIError, got %v", err)
	}
	if !strings.Contains(apiErr.Message, "nope-13B") {
		t.Errorf("error body does not name the model: %q", apiErr.Message)
	}
	_, err = c.Submit(ctx, service.SearchRequest{Model: "nope-13B", GPUs: 8})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("job submit: want 404 APIError, got %v", err)
	}
}

func TestHTTPBatchSearch(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	resp, err := c.SearchBatch(ctx, []service.SearchRequest{
		{Model: "t5-100M", GPUs: 8},
		{Model: "nope-13B", GPUs: 8},
		{GPUs: 8},
		{Model: "twotower-small", GPUs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(resp.Results))
	}
	// One bad spec does not fail the batch; results stay positional.
	if it := resp.Results[0]; !it.OK() || it.Response == nil || it.Response.Model != "t5-100M" {
		t.Errorf("item 0: %+v", it)
	}
	if it := resp.Results[1]; it.OK() || it.Status != http.StatusNotFound {
		t.Errorf("item 1 (unknown model): %+v", it)
	}
	if it := resp.Results[2]; it.OK() || it.Status != http.StatusBadRequest {
		t.Errorf("item 2 (invalid): %+v", it)
	}
	if it := resp.Results[3]; !it.OK() || it.Response == nil || it.Response.Model != "twotower-small" {
		t.Errorf("item 3: %+v", it)
	}

	// Envelope failures are whole-call errors.
	var apiErr *service.APIError
	if _, err := c.SearchBatch(ctx, nil); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: want 400, got %v", err)
	}
}

// TestHTTPWarmRestartFromStore is the daemon-level round trip: a plan
// searched by one server generation is served by the next from the
// persistent store, without re-running the pipeline.
func TestHTTPWarmRestartFromStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Generation 1: cold search, then a full drain (flushes the store).
	st1, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := service.New(service.Config{EngineOptions: []tapas.Option{tapas.WithStore(st1)}})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(service.NewHandler(svc1))
	c1 := service.NewClient(srv1.URL)
	cold, err := c1.Search(ctx, service.SearchRequest{Model: "t5-100M", GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cold.StoreHit || cold.CacheHit {
		t.Fatalf("first-generation search must be cold: %+v", cold.ResultSummary)
	}
	srv1.Close()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil { // drains the write-behind queue
		t.Fatal(err)
	}

	// Generation 2: fresh service over the same directory.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2, err := service.New(service.Config{EngineOptions: []tapas.Option{tapas.WithStore(st2)}})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(service.NewHandler(svc2))
	defer srv2.Close()
	defer svc2.Shutdown(ctx)
	c2 := service.NewClient(srv2.URL)

	warm, err := c2.Search(ctx, service.SearchRequest{Model: "t5-100M", GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.StoreHit {
		t.Fatal("second-generation search must be served from the store")
	}
	if warm.CacheHit {
		t.Error("store hit mislabeled as memory-cache hit")
	}
	if warm.PlanSummary != cold.PlanSummary || warm.CostSeconds != cold.CostSeconds ||
		warm.Report != cold.Report || warm.Timing != cold.Timing {
		t.Errorf("restored response diverged:\ncold: %+v\nwarm: %+v", cold.ResultSummary, warm.ResultSummary)
	}

	// The hit is visible in /v1/healthz.
	health, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Store == nil {
		t.Fatal("healthz missing store stats on a store-backed daemon")
	}
	if health.Store.Hits != 1 || health.Store.Entries != 1 {
		t.Errorf("healthz store stats: %+v", health.Store)
	}
}

func TestHTTPModelsAndHealth(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range models {
		if m == "t5-100M" {
			found = true
		}
	}
	if !found {
		t.Errorf("GET /v1/models missing t5-100M: %v", models)
	}

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.QueueCapacity == 0 || health.JobWorkers == 0 {
		t.Errorf("healthz not populated: %+v", health)
	}
	if health.Draining {
		t.Error("healthz reports draining on a live server")
	}
}

func TestHTTPAsyncJobWithSSE(t *testing.T) {
	// One job worker, and a blocker occupying it: the job under test
	// stays queued until the SSE stream is attached, so no progress
	// event can be missed.
	_, c := newTestServer(t, service.Config{JobWorkers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.Submit(ctx, service.SearchRequest{Model: "t5-770M", GPUs: 8}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(ctx, service.SearchRequest{Model: "t5-100M", GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.JobQueued && st.State != service.JobRunning {
		t.Fatalf("submitted job in state %s", st.State)
	}

	var progress int
	var final service.JobEvent
	err = c.StreamEvents(ctx, st.ID, func(ev service.JobEvent) error {
		if ev.Type == service.EventProgress {
			progress++
		}
		final = ev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Error("SSE stream carried no progress events for a cold search")
	}
	if final.Type != service.EventState || final.State != service.JobDone {
		t.Fatalf("stream ended on %+v, want done", final)
	}

	got, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.JobDone || got.Result == nil || got.Result.Plan == nil {
		t.Fatalf("done job status incomplete: %+v", got)
	}
	if got.Result.Model != "t5-100M" {
		t.Errorf("result model %q", got.Result.Model)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	st, err := c.Submit(ctx, service.SearchRequest{Model: "t5-1.4B", GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitDone(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.JobCancelled && final.State != service.JobDone {
		t.Errorf("after cancel: %s", final.State)
	}
}

func TestHTTPInlineSpecJob(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	spec := "model wire-mlp\ninput x f32 16 128\ndense fc x 256 relu\ndense out fc 128 none\nloss l out\n"

	resp, err := c.Search(ctx, service.SearchRequest{Spec: spec, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "wire-mlp" {
		t.Errorf("spec search model = %q", resp.Model)
	}
}
