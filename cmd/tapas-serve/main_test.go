package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tapas/service"
)

// newTestServer boots the full handler stack over a fresh service.
func newTestServer(t *testing.T, cfg ...service.Config) (*httptest.Server, *service.Client) {
	t.Helper()
	var c service.Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	svc := service.New(c)
	srv := httptest.NewServer(newMux(svc))
	t.Cleanup(func() {
		srv.Close()
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, service.NewClient(srv.URL)
}

func TestHTTPSyncSearchAndCacheHit(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	req := service.SearchRequest{Model: "t5-100M", GPUs: 8}

	cold, err := c.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SchemaVersion != service.SchemaVersion || cold.CacheHit {
		t.Fatalf("cold response wrong: version=%d hit=%v", cold.SchemaVersion, cold.CacheHit)
	}
	if cold.Plan == nil || len(cold.Plan.Assignments) == 0 {
		t.Fatal("plan missing from response")
	}
	warm, err := c.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("repeated POST /v1/search must be served from the cache")
	}
	if warm.PlanSummary != cold.PlanSummary {
		t.Errorf("cached plan %q != cold %q", warm.PlanSummary, cold.PlanSummary)
	}
}

func TestHTTPErrorBodies(t *testing.T) {
	srv, c := newTestServer(t)
	ctx := context.Background()

	// Validation error → 400 with JSON body.
	_, err := c.Search(ctx, service.SearchRequest{GPUs: 8})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if apiErr.Message == "" {
		t.Error("error body carried no message")
	}

	// Unknown job → 404.
	_, err = c.Job(ctx, "job-does-not-exist")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("want 404, got %v", err)
	}

	// Malformed JSON → 400 with JSON body.
	resp, err := http.Post(srv.URL+"/v1/search", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Errorf("malformed body: no JSON error envelope (%v)", err)
	}
}

func TestHTTPModelsAndHealth(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range models {
		if m == "t5-100M" {
			found = true
		}
	}
	if !found {
		t.Errorf("GET /v1/models missing t5-100M: %v", models)
	}

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.QueueCapacity == 0 || health.JobWorkers == 0 {
		t.Errorf("healthz not populated: %+v", health)
	}
	if health.Draining {
		t.Error("healthz reports draining on a live server")
	}
}

func TestHTTPAsyncJobWithSSE(t *testing.T) {
	// One job worker, and a blocker occupying it: the job under test
	// stays queued until the SSE stream is attached, so no progress
	// event can be missed.
	_, c := newTestServer(t, service.Config{JobWorkers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.Submit(ctx, service.SearchRequest{Model: "t5-770M", GPUs: 8}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(ctx, service.SearchRequest{Model: "t5-100M", GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.JobQueued && st.State != service.JobRunning {
		t.Fatalf("submitted job in state %s", st.State)
	}

	var progress int
	var final service.JobEvent
	err = c.StreamEvents(ctx, st.ID, func(ev service.JobEvent) error {
		if ev.Type == service.EventProgress {
			progress++
		}
		final = ev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Error("SSE stream carried no progress events for a cold search")
	}
	if final.Type != service.EventState || final.State != service.JobDone {
		t.Fatalf("stream ended on %+v, want done", final)
	}

	got, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.JobDone || got.Result == nil || got.Result.Plan == nil {
		t.Fatalf("done job status incomplete: %+v", got)
	}
	if got.Result.Model != "t5-100M" {
		t.Errorf("result model %q", got.Result.Model)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	st, err := c.Submit(ctx, service.SearchRequest{Model: "t5-1.4B", GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitDone(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.JobCancelled && final.State != service.JobDone {
		t.Errorf("after cancel: %s", final.State)
	}
}

func TestHTTPInlineSpecJob(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	spec := "model wire-mlp\ninput x f32 16 128\ndense fc x 256 relu\ndense out fc 128 none\nloss l out\n"

	resp, err := c.Search(ctx, service.SearchRequest{Spec: spec, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "wire-mlp" {
		t.Errorf("spec search model = %q", resp.Model)
	}
}
