package main

import (
	"math"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter: each client key
// holds a bucket refilled at rate tokens/second up to burst, and one
// request spends one token. A denied request learns how long until the
// next token — the Retry-After the gateway sends with its 429.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu        sync.Mutex
	clients   map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Idle buckets are swept so one-off clients cannot grow the table
// without bound.
const (
	sweepEvery = 5 * time.Minute
	idleFor    = 10 * time.Minute
)

func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:      rate,
		burst:     float64(burst),
		clients:   make(map[string]*bucket),
		lastSweep: time.Now(),
	}
}

// allow spends one token for key, or reports the wait until one
// accrues.
func (l *limiter) allow(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.Sub(l.lastSweep) > sweepEvery {
		for k, b := range l.clients {
			if now.Sub(b.last) > idleFor {
				delete(l.clients, k)
			}
		}
		l.lastSweep = now
	}
	b, ok := l.clients[key]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	}
	b.tokens += l.rate * now.Sub(b.last).Seconds()
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// retryAfterSeconds renders a denied request's wait as a Retry-After
// value: rounded UP to whole seconds, never below 1 — a sub-second wait
// must not truncate to "Retry-After: 0", which clients read as "no
// backoff" and turn into a hot retry loop.
func retryAfterSeconds(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
