package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tapas"
	"tapas/service"
	"tapas/store"
	"tapas/store/remotebackend"
)

// fakeReplica is a canned tapas-serve surface that records which routes
// it answered.
type fakeReplica struct {
	name     string
	srv      *httptest.Server
	searches atomic.Int64
	submits  atomic.Int64
	healthy  atomic.Bool
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	f := &fakeReplica{name: name}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		f.searches.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"schema_version":1,"served_by":%q}`, f.name)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := f.submits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"%s-job-%d","state":"queued"}`, f.name, n)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"jobs":[{"id":"%s-job-1","state":"done"}]}`, f.name)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !strings.HasPrefix(id, f.name+"-") {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"service: job not found"}`)
			return
		}
		fmt.Fprintf(w, `{"id":%q,"state":"done","served_by":%q}`, id, f.name)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !strings.HasPrefix(id, f.name+"-") {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"service: job not found"}`)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fmt.Fprintf(w, "event: progress\ndata: {\"job_id\":%q,\"type\":\"progress\",\"phase\":\"search\"}\n\n", id)
		fl.Flush()
		fmt.Fprintf(w, "event: state\ndata: {\"job_id\":%q,\"type\":\"state\",\"state\":\"done\"}\n\n", id)
		fl.Flush()
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"models":["t5-100M"],"served_by":%q}`, f.name)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// testGateway builds a gateway + server over the given replica URLs.
func testGateway(t *testing.T, cfg gatewayConfig) (*gateway, *httptest.Server) {
	t.Helper()
	gw := newGateway(cfg)
	srv := httptest.NewServer(gw.handler())
	t.Cleanup(srv.Close)
	return gw, srv
}

func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRoutingIsHashStable: the same search identity always lands on the
// same replica; distinct identities spread across the fleet.
func TestRoutingIsHashStable(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	urls := []string{fakes[0].srv.URL, fakes[1].srv.URL, fakes[2].srv.URL}
	_, srv := testGateway(t, gatewayConfig{replicas: urls})

	body := `{"model":"t5-100M","gpus":8}`
	var first string
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, srv.URL+"/v1/search", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: status %d", i, resp.StatusCode)
		}
		rep := resp.Header.Get(replicaHeader)
		if rep == "" {
			t.Fatal("no X-Tapas-Replica header on a proxied response")
		}
		if first == "" {
			first = rep
		} else if rep != first {
			t.Fatalf("request %d routed to %s, earlier ones to %s — not hash-stable", i, rep, first)
		}
	}

	// Distinct identities spread: 12 different (model, gpus) keys must
	// touch more than one replica.
	seen := map[string]bool{}
	for gpus := 1; gpus <= 12; gpus++ {
		resp, _ := postJSON(t, srv.URL+"/v1/search", fmt.Sprintf(`{"model":"t5-100M","gpus":%d}`, gpus), nil)
		seen[resp.Header.Get(replicaHeader)] = true
	}
	if len(seen) < 2 {
		t.Errorf("12 distinct keys all landed on one replica: %v", seen)
	}
}

// TestRoutingIsStructural: the gateway routes by graph fingerprint, so
// the same architecture spelled with different node names — or a
// different model name — is one key: it lands on one replica and hits
// that replica's cache.
func TestRoutingIsStructural(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	urls := []string{fakes[0].srv.URL, fakes[1].srv.URL, fakes[2].srv.URL}
	gw, srv := testGateway(t, gatewayConfig{replicas: urls})

	specA := `model alpha\ninput x f32 16 128\ndense fc x 256 relu\ndense out fc 128 none\nloss l out\n`
	specB := `model beta\ninput in0 f32 16 128\ndense h in0 256 relu\ndense y h 128 none\nloss cost y\n`
	bodyA, _ := json.Marshal(map[string]any{"spec": strings.ReplaceAll(specA, `\n`, "\n"), "gpus": 4})
	bodyB, _ := json.Marshal(map[string]any{"spec": strings.ReplaceAll(specB, `\n`, "\n"), "gpus": 4})

	keyA := gw.routeKey("/v1/search", bodyA)
	keyB := gw.routeKey("/v1/search", bodyB)
	if strings.HasPrefix(keyA, "raw:") {
		t.Fatalf("spec did not fingerprint: %q", keyA)
	}
	if keyA != keyB {
		t.Fatalf("renamed spec changed the routing key:\nA: %s\nB: %s", keyA, keyB)
	}

	ra, _ := postJSON(t, srv.URL+"/v1/search", string(bodyA), nil)
	rb, _ := postJSON(t, srv.URL+"/v1/search", string(bodyB), nil)
	if ra.Header.Get(replicaHeader) != rb.Header.Get(replicaHeader) {
		t.Error("structurally identical specs routed to different replicas")
	}
}

// bodyWhoseRingHeadIs searches for a request body whose consistent-hash
// home is the given replica — deterministic pressure for failover
// tests.
func bodyWhoseRingHeadIs(gw *gateway, head int) string {
	for i := 0; ; i++ {
		body := fmt.Sprintf(`{"model":"unknown-%d","gpus":8}`, i)
		if gw.fleet().ring.order(gw.routeKey("/v1/search", []byte(body)))[0] == head {
			return body
		}
	}
}

// TestFailoverToNextRingNode: a dead home replica's traffic moves to
// the next ring node; the death is recorded for health and metrics.
func TestFailoverToNextRingNode(t *testing.T) {
	alive := newFakeReplica(t, "alive")
	dead := newFakeReplica(t, "dead")
	deadURL := dead.srv.URL
	dead.srv.Close()
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{deadURL, alive.srv.URL}})

	body := bodyWhoseRingHeadIs(gw, 0) // home = the dead replica
	resp, data := postJSON(t, srv.URL+"/v1/search", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request answered %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(replicaHeader); got != alive.srv.URL {
		t.Errorf("answered by %q, want the surviving replica %q", got, alive.srv.URL)
	}
	if gw.failovers.Load() == 0 {
		t.Error("failover not counted")
	}
	if gw.fleet().replicas[0].healthy.Load() {
		t.Error("dead replica not passively marked down")
	}

	// Same identity keeps working (now routed straight to the healthy
	// node, which leads the candidate list).
	resp2, _ := postJSON(t, srv.URL+"/v1/search", body, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-failover request answered %d", resp2.StatusCode)
	}
}

// TestRateLimit429WithRetryAfter: a client that bursts past its bucket
// gets 429 + Retry-After; other clients are unaffected.
func TestRateLimit429WithRetryAfter(t *testing.T) {
	f := newFakeReplica(t, "a")
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{f.srv.URL}, rate: 1, burst: 2})

	body := `{"model":"t5-100M","gpus":8}`
	var limited *http.Response
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, srv.URL+"/v1/search", body, map[string]string{clientHeader: "bursty"})
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
		}
	}
	if limited == nil {
		t.Fatal("3 rapid requests against burst=2 never hit 429")
	}
	if ra := limited.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carried no Retry-After")
	}
	if gw.rateLimited.Load() == 0 {
		t.Error("rate-limited requests not counted")
	}
	// A different client principal is untouched.
	resp, _ := postJSON(t, srv.URL+"/v1/search", body, map[string]string{clientHeader: "calm"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("other client caught in the limiter: %d", resp.StatusCode)
	}
}

// TestJobStickinessAndProbe: job status follows the submit's replica;
// a gateway with no memory of the job (restart) probes the fleet and
// still finds it; an unknown job is 404.
func TestJobStickinessAndProbe(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	urls := []string{fakes[0].srv.URL, fakes[1].srv.URL, fakes[2].srv.URL}
	_, srv := testGateway(t, gatewayConfig{replicas: urls})

	resp, data := postJSON(t, srv.URL+"/v1/jobs", `{"model":"t5-100M","gpus":8}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		t.Fatalf("submit response unparseable: %s", data)
	}
	submitReplica := resp.Header.Get(replicaHeader)

	get, body := getURL(t, srv.URL+"/v1/jobs/"+st.ID)
	if get.StatusCode != http.StatusOK || get.Header.Get(replicaHeader) != submitReplica {
		t.Errorf("status fetched from %q (%d), want the submit replica %q",
			get.Header.Get(replicaHeader), get.StatusCode, submitReplica)
	}
	if !strings.Contains(string(body), st.ID) {
		t.Errorf("status body lost the job: %s", body)
	}

	// A fresh gateway (restart: empty owner table) probes and finds it.
	_, srv2 := testGateway(t, gatewayConfig{replicas: urls})
	get2, _ := getURL(t, srv2.URL+"/v1/jobs/"+st.ID)
	if get2.StatusCode != http.StatusOK || get2.Header.Get(replicaHeader) != submitReplica {
		t.Errorf("probe found %q (%d), want %q", get2.Header.Get(replicaHeader), get2.StatusCode, submitReplica)
	}

	// Unknown everywhere → one clean 404.
	get3, body3 := getURL(t, srv.URL+"/v1/jobs/nope-42")
	if get3.StatusCode != http.StatusNotFound || !strings.Contains(string(body3), "not found") {
		t.Errorf("unknown job: %d %s", get3.StatusCode, body3)
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// TestProbeDoesNotPinOnError: a replica that answers 5xx during an
// ownership probe must not be recorded as the job's owner — only a
// successful answer proves ownership.
func TestProbeDoesNotPinOnError(t *testing.T) {
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	t.Cleanup(sick.Close)
	owner := newFakeReplica(t, "b")
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{sick.URL, owner.srv.URL}})

	// The probe hits the sick replica first (index order) and relays
	// its error, but must not pin the job to it …
	resp, _ := getURL(t, srv.URL+"/v1/jobs/b-job-7")
	if resp.StatusCode == http.StatusNotFound {
		t.Fatalf("probe swallowed the sick replica's answer: %d", resp.StatusCode)
	}
	if _, pinned := gw.owners.get("b-job-7"); pinned && resp.StatusCode/100 != 2 {
		t.Fatal("job pinned to a replica that answered an error")
	}
	// … so once the sick replica is known-down, the probe finds the
	// real owner.
	gw.fleet().replicas[0].healthy.Store(false)
	resp2, body := getURL(t, srv.URL+"/v1/jobs/b-job-7")
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), `"served_by":"b"`) {
		t.Errorf("real owner not found after the sick replica: %d %s", resp2.StatusCode, body)
	}
	if u, ok := gw.owners.get("b-job-7"); !ok || u != owner.srv.URL {
		t.Errorf("successful probe did not record the owner: %v %v", u, ok)
	}
}

// TestStaleStickyPinReprobes: when a replica restarts, its durable jobs
// may be adopted by a different replica — so a pinned owner answering
// 404 means the pin is stale, not that the job is gone. The gateway
// must drop the pin, re-probe the fleet, and re-pin on the replica that
// actually holds the job. (It used to relay the 404 straight to the
// client.)
func TestStaleStickyPinReprobes(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b")}
	urls := []string{fakes[0].srv.URL, fakes[1].srv.URL}
	gw, srv := testGateway(t, gatewayConfig{replicas: urls})

	// The job lives on b, but the gateway still remembers the replica
	// that held it before a restart: a, which will answer 404.
	gw.owners.put("b-job-3", urls[0])

	get, body := getURL(t, srv.URL+"/v1/jobs/b-job-3")
	if get.StatusCode != http.StatusOK {
		t.Fatalf("stale pin leaked a 404 to the client: %d %s", get.StatusCode, body)
	}
	if got := get.Header.Get(replicaHeader); got != urls[1] {
		t.Errorf("answered by %q, want the adopting replica %q", got, urls[1])
	}
	if u, ok := gw.owners.get("b-job-3"); !ok || u != urls[1] {
		t.Errorf("pin not moved to the adopting replica: url=%s ok=%v", u, ok)
	}

	// A job no replica knows still yields one clean 404 even when a
	// stale pin pointed somewhere first.
	gw.owners.put("ghost-job-9", urls[0])
	get2, _ := getURL(t, srv.URL+"/v1/jobs/ghost-job-9")
	if get2.StatusCode != http.StatusNotFound {
		t.Errorf("vanished job: %d, want 404", get2.StatusCode)
	}
	if _, ok := gw.owners.get("ghost-job-9"); ok {
		t.Error("vanished job kept its stale pin")
	}
}

// TestRetryAfterSeconds: the limiter's wait must round UP and never
// render as "Retry-After: 0" — clients read zero as "no backoff".
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1200 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.wait); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.wait, got, c.want)
		}
	}
}

// TestSubmitNotReplayedMidFlight: a job submission whose connection
// dies after reaching a replica is NOT replayed elsewhere (the job may
// have been queued); only dial failures — provably never sent — fail
// over.
func TestSubmitNotReplayedMidFlight(t *testing.T) {
	killer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("no hijack support")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Close() // the request arrived, then the replica "crashed"
	}))
	t.Cleanup(killer.Close)
	second := newFakeReplica(t, "b")
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{killer.URL, second.srv.URL}})

	// Make the killer the ring head for this submit.
	var body string
	for i := 0; ; i++ {
		body = fmt.Sprintf(`{"model":"unknown-%d","gpus":8}`, i)
		if gw.fleet().ring.order(gw.routeKey("/v1/jobs", []byte(body)))[0] == 0 {
			break
		}
	}
	resp, data := postJSON(t, srv.URL+"/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("mid-flight submit failure answered %d, want 502: %s", resp.StatusCode, data)
	}
	if n := second.submits.Load(); n != 0 {
		t.Errorf("submit replayed onto the second replica %d times — duplicate job risk", n)
	}

	// A dial failure (nothing ever sent) still fails over.
	deadURL := killer.URL
	killer.Close()
	gw2, srv2 := testGateway(t, gatewayConfig{replicas: []string{deadURL, second.srv.URL}})
	var body2 string
	for i := 0; ; i++ {
		body2 = fmt.Sprintf(`{"model":"other-%d","gpus":8}`, i)
		if gw2.fleet().ring.order(gw2.routeKey("/v1/jobs", []byte(body2)))[0] == 0 {
			break
		}
	}
	resp2, data2 := postJSON(t, srv2.URL+"/v1/jobs", body2, nil)
	if resp2.StatusCode != http.StatusAccepted {
		t.Errorf("dial-failure submit did not fail over: %d %s", resp2.StatusCode, data2)
	}
}

// TestSSEEventsProxied: the events stream passes through the gateway
// intact (both frames, in order, as SSE).
func TestSSEEventsProxied(t *testing.T) {
	f := newFakeReplica(t, "a")
	_, srv := testGateway(t, gatewayConfig{replicas: []string{f.srv.URL}})

	resp, data := postJSON(t, srv.URL+"/v1/jobs", `{"model":"t5-100M","gpus":8}`, nil)
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &st); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit failed: %d %s", resp.StatusCode, data)
	}
	get, body := getURL(t, srv.URL+"/v1/jobs/"+st.ID+"/events")
	if get.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", get.StatusCode)
	}
	if ct := get.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("events content type %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, `"type":"progress"`) || !strings.Contains(text, `"state":"done"`) {
		t.Errorf("stream mangled:\n%s", text)
	}
	if strings.Index(text, "progress") > strings.Index(text, "done") {
		t.Error("events reordered")
	}
}

// TestFleetHealthAndJobsMerge: the gateway health view degrades and
// recovers with the fleet, and GET /v1/jobs merges every replica.
func TestFleetHealthAndJobsMerge(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{a.srv.URL, b.srv.URL}})
	ctx := context.Background()

	gw.checkAll(ctx)
	resp, body := getURL(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Errorf("healthy fleet: %d %s", resp.StatusCode, body)
	}

	jresp, jbody := getURL(t, srv.URL+"/v1/jobs")
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("jobs merge: %d", jresp.StatusCode)
	}
	if !strings.Contains(string(jbody), "a-job-1") || !strings.Contains(string(jbody), "b-job-1") {
		t.Errorf("fleet job listing incomplete: %s", jbody)
	}

	b.healthy.Store(false)
	gw.checkAll(ctx)
	resp, body = getURL(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "degraded"`) {
		t.Errorf("degraded fleet: %d %s", resp.StatusCode, body)
	}

	a.healthy.Store(false)
	gw.checkAll(ctx)
	resp, body = getURL(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"status": "unavailable"`) {
		t.Errorf("dead fleet: %d %s", resp.StatusCode, body)
	}

	// Recovery: the active checker brings a replica back.
	a.healthy.Store(true)
	gw.checkAll(ctx)
	if resp, _ := getURL(t, srv.URL+"/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("fleet did not recover: %d", resp.StatusCode)
	}
}

// TestGatewayMetrics: route counters come out in Prometheus text form.
func TestGatewayMetrics(t *testing.T) {
	f := newFakeReplica(t, "a")
	_, srv := testGateway(t, gatewayConfig{replicas: []string{f.srv.URL}})
	postJSON(t, srv.URL+"/v1/search", `{"model":"t5-100M","gpus":8}`, nil)

	resp, body := getURL(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE tapas_gateway_requests_total counter",
		"tapas_gateway_requests_total 1",
		fmt.Sprintf(`tapas_gateway_proxied_total{replica="%s"} 1`, f.srv.URL),
		fmt.Sprintf(`tapas_gateway_replica_healthy{replica="%s"} 1`, f.srv.URL),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestCrossReplicaStoreHitThroughGateway is the acceptance round trip
// on the real stack: replica A owns a filesystem corpus, replica B
// shares it over the store peer protocol, the gateway fronts both. A
// plan searched cold through the gateway is then answered with
// store_hit by the *other* replica — after a failover, without
// re-running the search.
func TestCrossReplicaStoreHitThroughGateway(t *testing.T) {
	ctx := context.Background()

	// Replica A: corpus owner.
	stA, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svcA, err := service.New(service.Config{EngineOptions: []tapas.Option{tapas.WithStore(stA)}})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(service.NewHandler(svcA))
	defer srvA.Close()
	defer svcA.Shutdown(ctx)
	defer stA.Close()

	// Replica B: shares A's corpus remotely.
	stB, err := store.Open(store.Options{Backend: remotebackend.New(srvA.URL), Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := service.New(service.Config{EngineOptions: []tapas.Option{tapas.WithStore(stB)}})
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(service.NewHandler(svcB))
	defer srvB.Close()
	defer svcB.Shutdown(ctx)
	defer stB.Close()

	gw, gwSrv := testGateway(t, gatewayConfig{replicas: []string{srvA.URL, srvB.URL}})

	// Cold search through the gateway.
	body := `{"model":"twotower-small","gpus":4}`
	resp, data := postJSON(t, gwSrv.URL+"/v1/search", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold search: %d %s", resp.StatusCode, data)
	}
	var cold service.SearchResponse
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.StoreHit || cold.CacheHit {
		t.Fatalf("first search through the gateway must be cold: %+v", cold.ResultSummary)
	}
	coldReplica := resp.Header.Get(replicaHeader)

	// The write-behind persist reaches the shared corpus.
	stA.Flush()
	stB.Flush()

	// Take the answering replica down; the ring fails the same key over
	// to the other one, which must answer from the shared store.
	for _, rep := range gw.fleet().replicas {
		if rep.url == coldReplica {
			rep.healthy.Store(false)
		}
	}
	resp2, data2 := postJSON(t, gwSrv.URL+"/v1/search", body, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("failover search: %d %s", resp2.StatusCode, data2)
	}
	warmReplica := resp2.Header.Get(replicaHeader)
	if warmReplica == coldReplica {
		t.Fatalf("failover did not move the key: still %s", warmReplica)
	}
	var warm service.SearchResponse
	if err := json.Unmarshal(data2, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.StoreHit {
		t.Fatalf("replica %s re-ran the search instead of serving the shared corpus: %+v",
			warmReplica, warm.ResultSummary)
	}
	if warm.PlanSummary != cold.PlanSummary || warm.Report != cold.Report || warm.CostSeconds != cold.CostSeconds {
		t.Errorf("shared-corpus answer diverged:\ncold: %+v\nwarm: %+v", cold.ResultSummary, warm.ResultSummary)
	}
}

// TestSingleflightCollapsesIdenticalSearches: N byte-identical
// concurrent searches produce one upstream request; the followers share
// the leader's response and are marked with X-Tapas-Singleflight.
func TestSingleflightCollapsesIdenticalSearches(t *testing.T) {
	release := make(chan struct{})
	var upstream atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		upstream.Add(1)
		<-release // hold every collapsed caller in flight
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"schema_version":1,"served_by":"slow"}`)
	}))
	t.Cleanup(slow.Close)
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{slow.URL}})

	const clients = 5
	body := `{"model":"t5-100M","gpus":8}`
	type answer struct {
		status int
		joined bool
		body   string
	}
	answers := make(chan answer, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, data := postJSON(t, srv.URL+"/v1/search", body, nil)
			answers <- answer{resp.StatusCode, resp.Header.Get(singleflightHeader) != "", string(data)}
		}()
	}
	// Wait until the leader is held upstream and the followers have had
	// a chance to pile in behind it.
	deadline := time.Now().Add(5 * time.Second)
	for upstream.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the replica")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)

	joined := 0
	for i := 0; i < clients; i++ {
		a := <-answers
		if a.status != http.StatusOK || !strings.Contains(a.body, "served_by") {
			t.Fatalf("collapsed search answered %d: %s", a.status, a.body)
		}
		if a.joined {
			joined++
		}
	}
	if got := upstream.Load(); got != 1 {
		t.Errorf("%d identical concurrent searches made %d upstream requests, want 1", clients, got)
	}
	if joined != clients-1 {
		t.Errorf("%d followers marked joined, want %d", joined, clients-1)
	}
	if gw.sfJoined.Load() != uint64(clients-1) {
		t.Errorf("singleflight counter %d, want %d", gw.sfJoined.Load(), clients-1)
	}

	// Sequential repeats do NOT collapse: each generation runs fresh.
	resp, _ := postJSON(t, srv.URL+"/v1/search", body, nil)
	if resp.Header.Get(singleflightHeader) != "" {
		t.Error("a search with no concurrent twin was marked joined")
	}
	if upstream.Load() != 2 {
		t.Errorf("sequential repeat collapsed into a finished flight: %d upstream calls", upstream.Load())
	}
}

// TestSingleflightDifferentBodiesDoNotCollapse: collapse is strictly
// byte-keyed; distinct bodies run their own upstream requests.
func TestSingleflightDifferentBodiesDoNotCollapse(t *testing.T) {
	release := make(chan struct{})
	var upstream atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		upstream.Add(1)
		<-release
		fmt.Fprint(w, `{"schema_version":1}`)
	}))
	t.Cleanup(slow.Close)
	_, srv := testGateway(t, gatewayConfig{replicas: []string{slow.URL}})

	done := make(chan struct{}, 2)
	for _, gpus := range []int{4, 8} {
		go func(g int) {
			postJSON(t, srv.URL+"/v1/search", fmt.Sprintf(`{"model":"t5-100M","gpus":%d}`, g), nil)
			done <- struct{}{}
		}(gpus)
	}
	deadline := time.Now().Add(5 * time.Second)
	for upstream.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("distinct bodies collapsed: only %d upstream requests", upstream.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	<-done
}

// TestFleetHotReload: PUT /v1/fleet swaps the replica ring without a
// restart — new replicas serve traffic immediately, removed ones stop
// receiving it, surviving ones keep their counters — and GET /v1/fleet
// reflects the change.
func TestFleetHotReload(t *testing.T) {
	a := newFakeReplica(t, "a")
	b := newFakeReplica(t, "b")
	c := newFakeReplica(t, "c")
	gw, srv := testGateway(t, gatewayConfig{replicas: []string{a.srv.URL, b.srv.URL}})

	// Seed traffic so the fleet has counters; remember the surviving
	// replica's share to prove the update carries its state over.
	for gpus := 1; gpus <= 6; gpus++ {
		postJSON(t, srv.URL+"/v1/search", fmt.Sprintf(`{"model":"t5-100M","gpus":%d}`, gpus), nil)
	}
	keptProxied := gw.fleet().byURL(a.srv.URL).proxied.Load()

	// Swap b out for c.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/fleet",
		strings.NewReader(fmt.Sprintf(`{"replicas":[%q,%q]}`, a.srv.URL, c.srv.URL)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet update: %d %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), c.srv.URL) || strings.Contains(string(data), b.srv.URL) {
		t.Fatalf("update response shows the wrong fleet: %s", data)
	}

	view := gw.fleet()
	if len(view.replicas) != 2 || view.byURL(b.srv.URL) != nil || view.byURL(c.srv.URL) == nil {
		t.Fatalf("ring not re-rung: %v", view.replicas)
	}
	if view.byURL(a.srv.URL).proxied.Load() != keptProxied {
		t.Error("surviving replica lost its counters across the update")
	}
	if gw.fleetUpdates.Load() != 1 {
		t.Errorf("fleet updates counter %d, want 1", gw.fleetUpdates.Load())
	}

	// Traffic spreads over the new fleet only.
	before := b.searches.Load()
	for gpus := 1; gpus <= 12; gpus++ {
		postJSON(t, srv.URL+"/v1/search", fmt.Sprintf(`{"model":"t5-100M","gpus":%d}`, gpus), nil)
	}
	if b.searches.Load() != before {
		t.Error("removed replica still receives traffic")
	}
	if c.searches.Load() == 0 && a.searches.Load() == 0 {
		t.Error("new fleet served nothing")
	}

	// GET /v1/fleet lists the live generation.
	gresp, gbody := getURL(t, srv.URL+"/v1/fleet")
	if gresp.StatusCode != http.StatusOK || !strings.Contains(string(gbody), c.srv.URL) {
		t.Errorf("GET /v1/fleet: %d %s", gresp.StatusCode, gbody)
	}

	// Garbage is rejected without touching the ring.
	for _, bad := range []string{`{}`, `{"replicas":[]}`, `{"replicas":["ftp://x"]}`, `{"replicas":["not a url"]}`} {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/fleet", strings.NewReader(bad))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("fleet update %q answered %d, want 400", bad, resp.StatusCode)
		}
	}
	if gw.fleetUpdates.Load() != 1 {
		t.Error("rejected updates mutated the fleet")
	}
}
