// Command tapas-gateway fronts a fleet of tapas-serve replicas with
// one address: the horizontal scale-out tier of the serving stack.
//
// Requests that name a search (sync search, batch, job submit) are
// routed by consistent hash of the search identity — graph fingerprint
// × device count × cluster × result-changing options, the same key the
// replicas' caches and stores use — so repeat traffic for one plan
// always lands on the replica whose memory cache already holds it.
// Job status/cancel/events follow the replica that owns the job.
// Replicas are health-checked actively (/v1/healthz) and failed over
// along the hash ring on transport errors; which replica answered is
// reported in the X-Tapas-Replica response header.
//
// With -rate, each client (the X-Tapas-Client header, else the client
// IP) gets a token bucket; requests beyond it are answered 429 with
// Retry-After, which service.Client's GET retries honor.
//
// Identical concurrent searches collapse into one upstream request
// (singleflight, keyed by path + raw body): during a cold-plan
// stampede — worst when the plan's home replica just died and every
// client retries at once — one replica executes and every waiter
// shares the buffered answer, marked X-Tapas-Singleflight: joined.
//
// The replica set itself is hot-reloadable: PUT /v1/fleet with
// {"replicas":[...]} swaps the ring without a restart (new replicas
// are probed before the call returns; surviving ones keep their health
// and counters), and GET /v1/fleet shows the live generation — so an
// autoscaler never needs to bounce the proxy. -replicas only seeds the
// initial fleet.
//
// Endpoints: the proxied v1 API (/v1/search, /v1/search:batch,
// /v1/jobs...), GET /v1/jobs (merged fleet listing), GET/PUT /v1/fleet
// (replica ring), GET /v1/healthz (fleet view; 503 when no replica is
// healthy), GET /v1/traces[/{id}] (trace flight recorder) and
// GET /metrics (Prometheus text).
//
// Every proxied request gets a gateway span: requests arriving with
// X-Tapas-Trace are adopted into that trace, untraced requests are
// sampled 1-in-N (-trace-sample), and the propagation headers are
// rewritten on the way to the replica so its spans parent under the
// gateway hop. The trace ID is echoed in the X-Tapas-Trace response
// header; GET /v1/traces/{id} on each process returns its slice of
// the tree.
//
// Usage:
//
//	tapas-gateway -addr :8090 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	tapas-gateway -addr :8090 -replicas ... -rate 10 -burst 20 -health-interval 2s
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tapas/internal/cli"
	"tapas/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated tapas-serve base URLs (required)")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "active health-check period")
	healthTimeout := flag.Duration("health-timeout", 2*time.Second, "per-replica health-check timeout")
	rate := flag.Float64("rate", 0, "per-client request rate (tokens/second; 0 disables rate limiting)")
	burst := flag.Int("burst", 0, "per-client burst size (0 = max(1, 2*rate))")
	jobTable := flag.Int("job-table", 4096, "job-to-replica stickiness entries retained")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	pprofAddr := flag.String("pprof-addr", "", "listen address of the pprof debug server (empty disables)")
	traceSample := flag.Int("trace-sample", 0, "record 1 in N untraced requests in the flight recorder (0 disables sampling; requests arriving with X-Tapas-Trace are always recorded)")
	traceSlow := flag.Duration("trace-slow", 0, "log a slow_request line for requests at least this long (0 disables)")
	logRequests := flag.Bool("log-requests", false, "log one key=value line per proxied request")
	flag.Parse()

	log.SetPrefix("tapas-gateway: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Printf("no replicas given; use -replicas http://host:port,...")
		os.Exit(2)
	}

	gw := newGateway(gatewayConfig{
		replicas:       urls,
		vnodes:         *vnodes,
		healthInterval: *healthInterval,
		healthTimeout:  *healthTimeout,
		rate:           *rate,
		burst:          *burst,
		jobTableSize:   *jobTable,
		logf:           log.Printf,
		rec:            trace.NewRecorder(trace.Config{Process: "tapas-gateway" + *addr, SampleEvery: *traceSample}),
		traceSlow:      *traceSlow,
		logRequests:    *logRequests,
	})

	cli.ServePprof(*pprofAddr, log.Printf)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gw.checkAll(ctx) // seed health state before taking traffic
	go gw.runHealth(ctx)

	srv := &http.Server{Addr: *addr, Handler: gw.handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("routing %d replicas on %s (vnodes=%d rate=%g)", len(urls), *addr, *vnodes, *rate)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Printf("listener failed: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("shutting down: draining for up to %v", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain deadline passed, closing in-flight requests")
		_ = srv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("%v", err)
	}
	log.Printf("bye")
}
