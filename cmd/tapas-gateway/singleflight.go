package main

import (
	"context"
	"net/http"
	"sync"
)

// Gateway-level singleflight: when N clients POST byte-identical search
// bodies concurrently — the classic stampede on a cold plan, worst when
// the plan's home replica just died and every client retries at once —
// only the first request goes upstream; the rest wait and share its
// buffered response. The replicas already collapse identical in-flight
// searches in-process, but without this the gateway would still open N
// upstream connections and, during failover, N separate ring walks.
//
// Collapse is strictly byte-keyed (path + raw body): two requests that
// would hit the same plan but differ in whitespace run separately.
// That conservatism keeps the gateway ignorant of request semantics —
// it never has to prove two bodies are equivalent, so it can never
// wrongly share a response. Only idempotent search routes collapse;
// job submits never do.

// sfResult is one buffered upstream search response, shareable across
// the callers that collapsed into it.
type sfResult struct {
	rep    *replicaState
	status int
	header http.Header
	body   []byte
}

// sfCall is one in-flight upstream request and its waiters' rendezvous.
type sfCall struct {
	done chan struct{}
	res  sfResult
	ok   bool
}

// singleflight collapses concurrent calls by key. The zero value is
// ready to use.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

// do returns fn's result for key, running fn once per key-generation:
// the first caller (the leader) runs it, concurrent callers with the
// same key wait and share the outcome. joined reports whether this
// caller shared another's result. A follower whose ctx dies stops
// waiting (ok=false) without affecting the others; a leader's failure
// is reported to every waiter (ok=false), each of whom then decides
// whether to retry alone — failures never cascade into re-collapse.
func (s *singleflight) do(ctx context.Context, key string, fn func() (sfResult, bool)) (res sfResult, joined, ok bool) {
	s.mu.Lock()
	if s.calls == nil {
		s.calls = make(map[string]*sfCall)
	}
	if c, inFlight := s.calls[key]; inFlight {
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.ok
		case <-ctx.Done():
			return sfResult{}, true, false
		}
	}
	c := &sfCall{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	c.res, c.ok = fn()

	s.mu.Lock()
	delete(s.calls, key) // later callers start a fresh generation
	s.mu.Unlock()
	close(c.done)
	return c.res, false, c.ok
}
