package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tapas"
	"tapas/internal/trace"
	"tapas/service"
	"tapas/service/dispatch"
)

// tracedReplica stands up one in-process tapas-serve with a flight
// recorder, returning the service, its server, and the recorder.
func tracedReplica(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, srv
}

// fetchTrace polls one process's /v1/traces/{id} until the trace holds
// every wanted span name (spans are recorded at End, which can land a
// beat after the response reaches the client) or the deadline passes.
func fetchTrace(t *testing.T, base, id string, want []string) trace.TraceDoc {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last trace.TraceDoc
	for {
		resp, err := http.Get(base + "/v1/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		names := make(map[string]bool, len(last.Spans))
		for _, s := range last.Spans {
			names[s.Name] = true
		}
		missing := ""
		for _, w := range want {
			if !names[w] {
				missing = w
				break
			}
		}
		if missing == "" {
			return last
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: trace %s never grew span %q (have %v)", base, id, missing, last.Spans)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTraceSpansFleet is the tentpole acceptance: one cold search
// through the gateway yields ONE trace ID whose spans land on three
// processes — the gateway's proxy root, the coordinating replica's
// search pipeline (mine/enum/assemble/simulate children), and at least
// one task executor's tasks.execute — each retrievable from that
// process's own /v1/traces/{id}, with parent links stitching across
// the process boundaries.
func TestTraceSpansFleet(t *testing.T) {
	// Executor: a plain replica that serves POST /v1/tasks.
	recExec := trace.NewRecorder(trace.Config{Process: "executor"})
	_, srvExec := tracedReplica(t, service.Config{Trace: recExec})

	// Coordinator: scatters cold enumerations to the executor.
	coord := dispatch.New(dispatch.Options{
		Peers:         []string{srvExec.URL},
		TaskTimeout:   time.Minute,
		ProbeInterval: -1,
		Logf:          t.Logf,
	})
	t.Cleanup(coord.Close)
	recCoord := trace.NewRecorder(trace.Config{Process: "replica"})
	_, srvCoord := tracedReplica(t, service.Config{
		EngineOptions: []tapas.Option{tapas.WithTaskRunner(coord.Runner)},
		Fleet:         coord,
		Trace:         recCoord,
	})

	// Gateway: samples every untraced request, so the organic search
	// below starts the trace at the outermost hop.
	_, gwSrv := testGateway(t, gatewayConfig{
		replicas: []string{srvCoord.URL},
		rec:      trace.NewRecorder(trace.Config{Process: "gateway", SampleEvery: 1}),
	})

	resp, data := postJSON(t, gwSrv.URL+"/v1/search", `{"model":"t5-100M","gpus":8}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}
	var res service.SearchResponse
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.StoreHit {
		t.Fatalf("search must run cold: %+v", res.ResultSummary)
	}
	traceID := resp.Header.Get(trace.TraceHeader)
	if traceID == "" {
		t.Fatal("response carries no X-Tapas-Trace header")
	}

	// Each process serves its slice of the same trace.
	gwDoc := fetchTrace(t, gwSrv.URL, traceID, []string{"POST /v1/search"})
	coordDoc := fetchTrace(t, srvCoord.URL, traceID, []string{
		"POST /v1/search", "service.search", "engine.search",
		"mine", "enum", "assemble", "simulate", "dispatch.ship",
	})
	execDoc := fetchTrace(t, srvExec.URL, traceID, []string{
		"POST /v1/tasks", "tasks.execute",
	})

	if gwDoc.Process != "gateway" || coordDoc.Process != "replica" || execDoc.Process != "executor" {
		t.Fatalf("process names: gw=%q coord=%q exec=%q",
			gwDoc.Process, coordDoc.Process, execDoc.Process)
	}

	// Parent links stitch the processes together: the replica's request
	// root parents under the gateway span, the executor's under one of
	// the replica's dispatch.ship spans.
	spanByID := func(doc trace.TraceDoc) map[string]trace.SpanData {
		m := make(map[string]trace.SpanData, len(doc.Spans))
		for _, s := range doc.Spans {
			m[s.SpanID] = s
		}
		return m
	}
	gwSpans, coordSpans := spanByID(gwDoc), spanByID(coordDoc)

	var coordRoot trace.SpanData
	for _, s := range coordDoc.Spans {
		if s.Name == "POST /v1/search" {
			coordRoot = s
		}
	}
	if p, ok := gwSpans[coordRoot.ParentID]; !ok || p.Name != "POST /v1/search" {
		t.Errorf("replica root's parent %q not the gateway's proxy span", coordRoot.ParentID)
	}

	var execRoot trace.SpanData
	for _, s := range execDoc.Spans {
		if s.Name == "POST /v1/tasks" {
			execRoot = s
		}
	}
	if p, ok := coordSpans[execRoot.ParentID]; !ok || p.Name != "dispatch.ship" {
		t.Errorf("executor root's parent %q not a dispatch.ship span on the replica (got %q)",
			execRoot.ParentID, p.Name)
	}

	// The listing summarizes the trace under its outermost local root.
	var listing struct {
		Traces []trace.TraceSummary `json:"traces"`
	}
	lresp, err := http.Get(gwSrv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range listing.Traces {
		if s.TraceID == traceID {
			found = true
			if s.Root != "POST /v1/search" {
				t.Errorf("gateway summary root = %q, want POST /v1/search", s.Root)
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from the gateway listing", traceID)
	}
}

// TestGatewayTraceAdoption: a request arriving WITH trace headers is
// always recorded (no sampling), keeps the caller's trace ID, and the
// replica joins the same trace.
func TestGatewayTraceAdoption(t *testing.T) {
	recRep := trace.NewRecorder(trace.Config{Process: "replica"})
	_, srvRep := tracedReplica(t, service.Config{Trace: recRep})
	_, gwSrv := testGateway(t, gatewayConfig{
		replicas: []string{srvRep.URL},
		rec:      trace.NewRecorder(trace.Config{Process: "gateway"}), // sampling off
	})

	const callerTrace = "cafebabecafebabe"
	resp, data := postJSON(t, gwSrv.URL+"/v1/search", `{"model":"t5-100M","gpus":4}`,
		map[string]string{trace.TraceHeader: callerTrace, trace.ParentHeader: "0123456789abcdef"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(trace.TraceHeader); got != callerTrace {
		t.Fatalf("echoed trace ID %q, want the caller's %q", got, callerTrace)
	}
	fetchTrace(t, gwSrv.URL, callerTrace, []string{"POST /v1/search"})
	fetchTrace(t, srvRep.URL, callerTrace, []string{"POST /v1/search", "service.search"})

	// And without headers, sampling off records nothing.
	resp2, _ := postJSON(t, gwSrv.URL+"/v1/search", `{"model":"t5-100M","gpus":4}`, nil)
	if got := resp2.Header.Get(trace.TraceHeader); got != "" {
		t.Fatalf("unsampled request got trace ID %q", got)
	}
	tresp, err := http.Get(gwSrv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var listing struct {
		Traces []trace.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	for _, s := range listing.Traces {
		if s.TraceID != callerTrace {
			t.Errorf("unexpected trace %q recorded with sampling off", s.TraceID)
		}
	}
}

// TestGatewayMetricsHistograms: the gateway /metrics carries the
// request-latency histogram and the runtime gauges.
func TestGatewayMetricsHistograms(t *testing.T) {
	f := newFakeReplica(t, "a")
	_, srv := testGateway(t, gatewayConfig{replicas: []string{f.srv.URL}})
	postJSON(t, srv.URL+"/v1/search", `{"model":"t5-100M","gpus":8}`, nil)

	resp, body := getURL(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE tapas_request_duration_seconds histogram",
		`tapas_request_duration_seconds_bucket{le="+Inf"} 1`,
		"tapas_request_duration_seconds_count 1",
		"# TYPE tapas_goroutines gauge",
		"tapas_heap_alloc_bytes",
		"tapas_gc_pause_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
