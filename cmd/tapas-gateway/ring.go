package main

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// hashRing is a consistent-hash ring over replica indices with virtual
// nodes, so adding or removing one replica remaps only ~1/N of the key
// space (keeping the other replicas' memory caches warm) and the load
// spreads evenly despite the replicas hashing to arbitrary points.
type hashRing struct {
	points []ringPoint // sorted by hash
	n      int         // distinct replicas
}

type ringPoint struct {
	hash    uint64
	replica int
}

// newRing places vnodes points per replica, named by name(i).
func newRing(n, vnodes int, name func(int) string) *hashRing {
	r := &hashRing{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(name(i) + "#" + strconv.Itoa(v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// order returns every replica index exactly once, in ring order
// starting at key's successor: the head is the key's home replica and
// the tail is its failover preference list.
func (r *hashRing) order(key string) []int {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	out := make([]int, 0, r.n)
	for k := 0; k < len(r.points) && len(out) < r.n; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
