package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tapas/internal/graphio"
	"tapas/internal/models"
	"tapas/internal/promtext"
	"tapas/service"
)

// maxBodyBytes bounds one proxied request body (mirrors the daemon's
// own limit).
const maxBodyBytes = 8 << 20

// replicaHeader names the replica that answered a proxied request — for
// debugging, tests, and the CI smoke's routing-stability check.
const replicaHeader = "X-Tapas-Replica"

// clientHeader optionally names the rate-limit principal; without it
// the client IP is the principal.
const clientHeader = "X-Tapas-Client"

// gatewayConfig sizes a gateway. newGateway fills defaults for zero
// values.
type gatewayConfig struct {
	replicas       []string
	vnodes         int           // virtual nodes per replica (default 64)
	healthInterval time.Duration // active health-check period (default 2s)
	healthTimeout  time.Duration // per-check timeout (default 2s)
	rate           float64       // tokens/second per client; 0 disables rate limiting
	burst          int           // bucket depth (default max(1, 2*rate))
	jobTableSize   int           // job-owner stickiness entries (default 4096)
	logf           func(string, ...any)
}

// replicaState is one backend daemon as the gateway sees it.
type replicaState struct {
	url     string
	healthy atomic.Bool
	lastErr atomic.Pointer[string]

	// Task-layer counters mirrored from the replica's last healthz
	// answer, so the gateway's fleet view can aggregate distributed
	// cold-search activity without extra round trips.
	tasksExecuted atomic.Uint64
	tasksFailed   atomic.Uint64
}

func (r *replicaState) setErr(err error) {
	if err == nil {
		r.lastErr.Store(nil)
		return
	}
	s := err.Error()
	r.lastErr.Store(&s)
}

func (r *replicaState) errString() string {
	if p := r.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// gateway routes the v1 API across a fleet of tapas-serve replicas:
// consistent-hash routing on the search identity (so each replica's
// memory cache concentrates on its share of the key space), active
// health checks with ring-order failover, per-client token-bucket rate
// limiting, and job-owner stickiness for the async API.
type gateway struct {
	cfg      gatewayConfig
	replicas []*replicaState
	ring     *hashRing
	limiter  *limiter // nil when disabled

	proxy  *http.Client // no timeout: searches run long; request contexts bound it
	health *http.Client

	owners *ownerTable
	fps    sync.Map // model name → graph fingerprint

	requests    atomic.Uint64
	rateLimited atomic.Uint64
	failovers   atomic.Uint64
	proxied     []atomic.Uint64 // per replica
	proxyErrors []atomic.Uint64 // per replica
}

func newGateway(cfg gatewayConfig) *gateway {
	if cfg.vnodes <= 0 {
		cfg.vnodes = 64
	}
	if cfg.healthInterval <= 0 {
		cfg.healthInterval = 2 * time.Second
	}
	if cfg.healthTimeout <= 0 {
		cfg.healthTimeout = 2 * time.Second
	}
	if cfg.jobTableSize <= 0 {
		cfg.jobTableSize = 4096
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	gw := &gateway{
		cfg:         cfg,
		ring:        newRing(len(cfg.replicas), cfg.vnodes, func(i int) string { return cfg.replicas[i] }),
		proxy:       &http.Client{},
		health:      &http.Client{Timeout: cfg.healthTimeout},
		owners:      newOwnerTable(cfg.jobTableSize),
		proxied:     make([]atomic.Uint64, len(cfg.replicas)),
		proxyErrors: make([]atomic.Uint64, len(cfg.replicas)),
	}
	for _, u := range cfg.replicas {
		rs := &replicaState{url: strings.TrimRight(u, "/")}
		rs.healthy.Store(true) // optimistic until the first check
		gw.replicas = append(gw.replicas, rs)
	}
	if cfg.rate > 0 {
		burst := cfg.burst
		if burst <= 0 {
			burst = int(math.Max(1, 2*cfg.rate))
		}
		gw.limiter = newLimiter(cfg.rate, burst)
	}
	return gw
}

// handler wires the gateway's HTTP surface.
func (gw *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", gw.keyed)
	mux.HandleFunc("POST /v1/search:batch", gw.keyed)
	mux.HandleFunc("POST /v1/jobs", gw.keyed)
	mux.HandleFunc("GET /v1/jobs", gw.jobsList)
	mux.HandleFunc("GET /v1/jobs/{id}", gw.jobByID)
	mux.HandleFunc("DELETE /v1/jobs/{id}", gw.jobByID)
	mux.HandleFunc("GET /v1/jobs/{id}/events", gw.jobByID)
	mux.HandleFunc("GET /v1/models", gw.anyReplica)
	mux.HandleFunc("GET /v1/healthz", gw.healthz)
	mux.HandleFunc("GET /metrics", gw.metrics)
	return mux
}

// ---------------------------------------------------------------------------
// Routing

// routeKey computes the consistent-hash identity of one request,
// mirroring the engine's cache key: graph fingerprint × device count ×
// cluster preset × result-changing options. Worker counts are excluded
// (results are worker-independent), so differently-paced requests for
// one plan land on one replica and hit its cache. Unparseable bodies
// hash raw — stably, so even a request the replica will 400 routes
// consistently; batches hash as a unit.
func (gw *gateway) routeKey(path string, body []byte) string {
	if strings.HasSuffix(path, ":batch") {
		return "batch:" + string(body)
	}
	var req service.SearchRequest
	if err := json.Unmarshal(body, &req); err == nil {
		if fp, ok := gw.fingerprint(req); ok {
			return fmt.Sprintf("%s|%d|%s|%v|%d", fp, req.GPUs, req.Cluster, req.Exhaustive, req.TimeBudgetMS)
		}
	}
	return "raw:" + string(body)
}

// fingerprint resolves a request's structural graph fingerprint — the
// same identity the replicas key their caches and stores by, so routing
// is stable under model renames and across spec-vs-model phrasing of
// the same graph. Registered models are memoized; inline specs are
// parsed per request (bounded by maxBodyBytes).
func (gw *gateway) fingerprint(req service.SearchRequest) (string, bool) {
	if req.Spec != "" {
		g, err := graphio.Parse(strings.NewReader(req.Spec))
		if err != nil {
			return "", false
		}
		return g.Fingerprint(), true
	}
	if req.Model == "" {
		return "", false
	}
	if v, ok := gw.fps.Load(req.Model); ok {
		return v.(string), true
	}
	g, err := models.Build(req.Model)
	if err != nil {
		return "", false
	}
	fp := g.Fingerprint()
	gw.fps.Store(req.Model, fp)
	return fp, true
}

// candidates orders every replica for one key: the ring order, healthy
// replicas first. Unhealthy replicas stay on the tail as a last resort —
// if the whole fleet looks down, trying beats a blind 502.
func (gw *gateway) candidates(key string) []int {
	ringOrder := gw.ring.order(key)
	out := make([]int, 0, len(ringOrder))
	for _, i := range ringOrder {
		if gw.replicas[i].healthy.Load() {
			out = append(out, i)
		}
	}
	for _, i := range ringOrder {
		if !gw.replicas[i].healthy.Load() {
			out = append(out, i)
		}
	}
	return out
}

// healthyFirst is candidates for requests with no routing identity.
func (gw *gateway) healthyFirst() []int {
	out := make([]int, 0, len(gw.replicas))
	for i, r := range gw.replicas {
		if r.healthy.Load() {
			out = append(out, i)
		}
	}
	for i, r := range gw.replicas {
		if !r.healthy.Load() {
			out = append(out, i)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Proxying

// keyed proxies one body-routed request (search, batch, job submit) to
// its key's replica, failing over along the ring.
func (gw *gateway) keyed(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, fmt.Sprintf("read request body: %v", err))
		return
	}
	submit := r.URL.Path == "/v1/jobs"
	idx, status, respBody, ok := gw.forward(w, r, body, gw.candidates(gw.routeKey(r.URL.Path, body)), false)
	if ok && submit && status == http.StatusAccepted {
		var st service.JobStatus
		if err := json.Unmarshal(respBody, &st); err == nil && st.ID != "" {
			gw.owners.put(st.ID, idx)
		}
	}
}

// jobByID proxies status/cancel/events for one job to the replica that
// owns it — the one its submit was routed to — probing the fleet when
// the owner is unknown (e.g. after a gateway restart) OR when the
// pinned replica disclaims the job: a replica restarted with durable
// jobs may see its orphans adopted by a shared-corpus peer, so a stale
// pin's 404 is that replica's answer, not the fleet's. The probe re-pins
// to whichever replica actually holds the job.
func (gw *gateway) jobByID(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	id := r.PathValue("id")
	stream := strings.HasSuffix(r.URL.Path, "/events")
	if idx, ok := gw.owners.get(id); ok {
		resp, err := gw.send(r, gw.replicas[idx], nil)
		switch {
		case err != nil:
			if r.Context().Err() != nil {
				return // the client went away; nothing to answer
			}
			gw.noteSendFailure(idx, err)
			gw.owners.drop(id)
		case resp.StatusCode == http.StatusNotFound:
			resp.Body.Close()
			gw.owners.drop(id)
		default:
			gw.relay(w, r, idx, resp, stream, false)
			return
		}
		// fall through to the ownership probe
	}
	for _, idx := range gw.healthyFirst() {
		resp, err := gw.send(r, gw.replicas[idx], nil)
		if err != nil {
			gw.noteSendFailure(idx, err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		if resp.StatusCode/100 == 2 {
			// Only a successful answer proves ownership: a 5xx/503 from
			// a replica that merely happens to be unwell must not pin
			// the job to it.
			gw.owners.put(id, idx)
		}
		gw.relay(w, r, idx, resp, stream, false)
		return
	}
	writeJSONErr(w, http.StatusNotFound, fmt.Sprintf("job %q not found on any replica", id))
}

// jobsList merges every healthy replica's job listing into one fleet
// view.
func (gw *gateway) jobsList(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	merged := make([]json.RawMessage, 0)
	reached := false
	for _, idx := range gw.healthyFirst() {
		resp, err := gw.send(r, gw.replicas[idx], nil)
		if err != nil {
			gw.noteSendFailure(idx, err)
			continue
		}
		var body struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode/100 != 2 {
			continue
		}
		reached = true
		gw.proxied[idx].Add(1)
		merged = append(merged, body.Jobs...)
	}
	if !reached {
		writeJSONErr(w, http.StatusBadGateway, "no replica reachable")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"jobs": merged})
}

// anyReplica proxies a replica-agnostic request to whichever healthy
// replica answers first.
func (gw *gateway) anyReplica(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	gw.forward(w, r, nil, gw.healthyFirst(), false)
}

// forward tries candidates in order until one answers, relaying its
// response. A replica that cannot be reached is marked unhealthy
// (passively; the active checker can restore it) and the next ring node
// is tried — transport failures only, never an answered request.
// Job submissions are not idempotent, so they fail over only on dial
// errors (the request provably never reached the replica); a
// mid-flight failure could mean the job was accepted, and replaying it
// would enqueue a duplicate. Searches are deterministic and cached, so
// any transport failure fails over. Returns the answering replica's
// index, the status, and (when buffered) the response body.
func (gw *gateway) forward(w http.ResponseWriter, r *http.Request, body []byte, cands []int, stream bool) (int, int, []byte, bool) {
	submit := r.Method == http.MethodPost && r.URL.Path == "/v1/jobs"
	for n, idx := range cands {
		resp, err := gw.send(r, gw.replicas[idx], body)
		if err != nil {
			if r.Context().Err() != nil {
				return 0, 0, nil, false // the client went away; nothing to answer
			}
			gw.noteSendFailure(idx, err)
			if submit && !isDialError(err) {
				writeJSONErr(w, http.StatusBadGateway,
					fmt.Sprintf("replica %s failed mid-submit; the job may or may not be queued there", gw.replicas[idx].url))
				return 0, 0, nil, false
			}
			if n < len(cands)-1 {
				gw.failovers.Add(1)
				gw.cfg.logf("replica %s unreachable (%v), failing over", gw.replicas[idx].url, err)
			}
			continue
		}
		status, respBody, ok := gw.relay(w, r, idx, resp, stream, body != nil && r.URL.Path == "/v1/jobs")
		return idx, status, respBody, ok
	}
	writeJSONErr(w, http.StatusBadGateway, "no replica reachable")
	return 0, 0, nil, false
}

// relay copies one replica response to the client. Buffered routes
// return the body bytes (for the submit path's owner bookkeeping);
// stream routes flush through, which keeps SSE live.
func (gw *gateway) relay(w http.ResponseWriter, r *http.Request, idx int, resp *http.Response, stream, buffer bool) (int, []byte, bool) {
	defer resp.Body.Close()
	gw.proxied[idx].Add(1)
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop(k) {
			continue
		}
		h[k] = vs
	}
	h.Set(replicaHeader, gw.replicas[idx].url)
	w.WriteHeader(resp.StatusCode)
	if stream {
		rc := http.NewResponseController(w)
		buf := make([]byte, 16*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return resp.StatusCode, nil, true
				}
				_ = rc.Flush()
			}
			if err != nil {
				return resp.StatusCode, nil, true
			}
		}
	}
	if buffer {
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return resp.StatusCode, nil, false
		}
		_, _ = w.Write(respBody)
		return resp.StatusCode, respBody, true
	}
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode, nil, true
}

// send issues one proxied request to a replica.
func (gw *gateway) send(r *http.Request, rep *replicaState, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, rep.url+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		if hopByHop(k) || strings.EqualFold(k, "Host") {
			continue
		}
		out.Header[k] = vs
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		prior := r.Header.Get("X-Forwarded-For")
		if prior != "" {
			host = prior + ", " + host
		}
		out.Header.Set("X-Forwarded-For", host)
	}
	return gw.proxy.Do(out)
}

// isDialError reports whether a transport failure happened before any
// byte reached the replica (connection refused, no route) — the only
// failures safe to replay for non-idempotent requests.
func isDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// noteSendFailure records a transport failure against a replica and
// marks it down until the active checker clears it.
func (gw *gateway) noteSendFailure(idx int, err error) {
	gw.proxyErrors[idx].Add(1)
	rep := gw.replicas[idx]
	rep.healthy.Store(false)
	rep.setErr(err)
}

// hopByHop reports headers that must not cross a proxy.
func hopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Rate limiting

// allow admits one request through the per-client rate limiter, or
// answers 429 with Retry-After and reports false.
func (gw *gateway) allow(w http.ResponseWriter, r *http.Request) bool {
	if gw.limiter == nil {
		return true
	}
	key := r.Header.Get(clientHeader)
	if key == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		} else {
			key = r.RemoteAddr
		}
	}
	ok, wait := gw.limiter.allow(key, time.Now())
	if ok {
		return true
	}
	gw.rateLimited.Add(1)
	secs := retryAfterSeconds(wait)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSONErr(w, http.StatusTooManyRequests,
		fmt.Sprintf("rate limit exceeded for client %q, retry after %ds", key, secs))
	return false
}

// ---------------------------------------------------------------------------
// Health

// checkAll probes every replica's /v1/healthz once.
func (gw *gateway) checkAll(ctx context.Context) {
	for _, rep := range gw.replicas {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := gw.health.Do(req)
		if err != nil {
			if rep.healthy.CompareAndSwap(true, false) {
				gw.cfg.logf("replica %s down: %v", rep.url, err)
			}
			rep.setErr(err)
			continue
		}
		var hb struct {
			TasksExecuted uint64 `json:"tasks_executed"`
			TasksFailed   uint64 `json:"tasks_failed"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hb) == nil {
			rep.tasksExecuted.Store(hb.TasksExecuted)
			rep.tasksFailed.Store(hb.TasksFailed)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		up := resp.StatusCode/100 == 2
		if up {
			rep.setErr(nil)
			if rep.healthy.CompareAndSwap(false, true) {
				gw.cfg.logf("replica %s back up", rep.url)
			}
		} else {
			if rep.healthy.CompareAndSwap(true, false) {
				gw.cfg.logf("replica %s unhealthy: status %d", rep.url, resp.StatusCode)
			}
			rep.setErr(fmt.Errorf("healthz returned %d", resp.StatusCode))
		}
	}
}

// runHealth actively checks the fleet until ctx dies.
func (gw *gateway) runHealth(ctx context.Context) {
	t := time.NewTicker(gw.cfg.healthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			gw.checkAll(ctx)
		}
	}
}

// ---------------------------------------------------------------------------
// Introspection

// replicaHealth is one replica's row in the gateway's health view.
type replicaHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
	// TasksExecuted/TasksFailed mirror the replica's /v1/tasks counters
	// as of its last health check — the fleet's distributed cold-search
	// activity at a glance.
	TasksExecuted uint64 `json:"tasks_executed"`
	TasksFailed   uint64 `json:"tasks_failed"`
}

// healthz answers the gateway's fleet view: 200 while at least one
// replica is healthy, 503 when none is.
func (gw *gateway) healthz(w http.ResponseWriter, r *http.Request) {
	reps := make([]replicaHealth, 0, len(gw.replicas))
	healthy := 0
	var tasksExecuted, tasksFailed uint64
	for _, rep := range gw.replicas {
		up := rep.healthy.Load()
		if up {
			healthy++
		}
		te, tf := rep.tasksExecuted.Load(), rep.tasksFailed.Load()
		tasksExecuted += te
		tasksFailed += tf
		reps = append(reps, replicaHealth{
			URL: rep.url, Healthy: up, LastError: rep.errString(),
			TasksExecuted: te, TasksFailed: tf,
		})
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case healthy == 0:
		status = "unavailable"
		code = http.StatusServiceUnavailable
	case healthy < len(gw.replicas):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"status":              status,
		"replicas":            reps,
		"fleet_peers_healthy": healthy,
		"tasks_executed":      tasksExecuted,
		"tasks_failed":        tasksFailed,
		"requests_total":      gw.requests.Load(),
		"rate_limited_total":  gw.rateLimited.Load(),
		"failovers_total":     gw.failovers.Load(),
	})
}

// metrics serves the gateway's route counters in Prometheus text form.
func (gw *gateway) metrics(w http.ResponseWriter, r *http.Request) {
	m := promtext.New()
	m.Counter("tapas_gateway_requests_total", "Requests accepted for routing.", float64(gw.requests.Load()), nil)
	m.Counter("tapas_gateway_rate_limited_total", "Requests answered 429 by the per-client limiter.", float64(gw.rateLimited.Load()), nil)
	m.Counter("tapas_gateway_failovers_total", "Requests moved to the next ring node after a transport failure.", float64(gw.failovers.Load()), nil)
	m.Gauge("tapas_gateway_job_owners", "Job-to-replica stickiness entries resident.", float64(gw.owners.len()), nil)
	healthy := 0
	for i, rep := range gw.replicas {
		l := promtext.Labels{"replica": rep.url}
		m.Counter("tapas_gateway_proxied_total", "Responses relayed, per replica.", float64(gw.proxied[i].Load()), l)
		m.Counter("tapas_gateway_proxy_errors_total", "Transport failures, per replica.", float64(gw.proxyErrors[i].Load()), l)
		m.Counter("tapas_gateway_replica_tasks_executed_total", "Prefix tasks the replica executed for coordinators, as of its last health check.", float64(rep.tasksExecuted.Load()), l)
		m.Counter("tapas_gateway_replica_tasks_failed_total", "Rejected or failed /v1/tasks batches on the replica, as of its last health check.", float64(rep.tasksFailed.Load()), l)
		up := 0.0
		if rep.healthy.Load() {
			up = 1
			healthy++
		}
		m.Gauge("tapas_gateway_replica_healthy", "1 while the replica passes health checks.", up, l)
	}
	m.Gauge("tapas_gateway_fleet_peers_healthy", "Replicas currently passing health checks.", float64(healthy), nil)
	w.Header().Set("Content-Type", promtext.ContentType)
	_, _ = m.WriteTo(w)
}

// writeJSONErr emits the daemon-compatible JSON error envelope.
func writeJSONErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ---------------------------------------------------------------------------
// Job-owner stickiness

// ownerTable remembers which replica owns each submitted job, FIFO
// bounded (job IDs are unguessable and short-lived; on overflow or
// gateway restart the probe path recovers ownership).
type ownerTable struct {
	mu    sync.Mutex
	m     map[string]int
	order []string
	max   int
}

func newOwnerTable(max int) *ownerTable {
	return &ownerTable{m: make(map[string]int), max: max}
}

func (o *ownerTable) put(id string, idx int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.m[id]; !ok {
		o.order = append(o.order, id)
		for len(o.order) > o.max {
			delete(o.m, o.order[0])
			o.order = o.order[1:]
		}
	}
	o.m[id] = idx
}

// drop forgets a pin proven stale (the pinned replica disclaimed or
// could not answer for the job), so the next lookup probes afresh.
func (o *ownerTable) drop(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.m[id]; !ok {
		return
	}
	delete(o.m, id)
	for i, other := range o.order {
		if other == id {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
}

func (o *ownerTable) get(id string) (int, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	idx, ok := o.m[id]
	return idx, ok
}

func (o *ownerTable) len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.m)
}
