package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tapas/internal/graphio"
	"tapas/internal/models"
	"tapas/internal/promtext"
	"tapas/internal/trace"
	"tapas/service"
)

// maxBodyBytes bounds one proxied request body (mirrors the daemon's
// own limit).
const maxBodyBytes = 8 << 20

// replicaHeader names the replica that answered a proxied request — for
// debugging, tests, and the CI smoke's routing-stability check.
const replicaHeader = "X-Tapas-Replica"

// singleflightHeader marks a response served from another client's
// identical in-flight search rather than a dedicated upstream request.
const singleflightHeader = "X-Tapas-Singleflight"

// clientHeader optionally names the rate-limit principal; without it
// the client IP is the principal.
const clientHeader = "X-Tapas-Client"

// gatewayConfig sizes a gateway. newGateway fills defaults for zero
// values.
type gatewayConfig struct {
	replicas       []string
	vnodes         int           // virtual nodes per replica (default 64)
	healthInterval time.Duration // active health-check period (default 2s)
	healthTimeout  time.Duration // per-check timeout (default 2s)
	rate           float64       // tokens/second per client; 0 disables rate limiting
	burst          int           // bucket depth (default max(1, 2*rate))
	jobTableSize   int           // job-owner stickiness entries (default 4096)
	logf           func(string, ...any)

	// rec is the gateway's trace flight recorder; nil disables tracing
	// (the /v1/traces endpoints then answer empty).
	rec *trace.Recorder
	// traceSlow logs a slow_request line for requests at least this
	// long; 0 disables.
	traceSlow time.Duration
	// logRequests emits one key=value log line per proxied request.
	logRequests bool
}

// replicaState is one backend daemon as the gateway sees it. States are
// keyed by URL and survive fleet updates: a PUT /v1/fleet that keeps a
// replica keeps its health bit and counters.
type replicaState struct {
	url     string
	healthy atomic.Bool
	lastErr atomic.Pointer[string]

	proxied     atomic.Uint64 // responses relayed from this replica
	proxyErrors atomic.Uint64 // transport failures against it

	// Task-layer counters mirrored from the replica's last healthz
	// answer, so the gateway's fleet view can aggregate distributed
	// cold-search activity without extra round trips.
	tasksExecuted atomic.Uint64
	tasksFailed   atomic.Uint64

	// Replication counters mirrored the same way; repEnabled separates
	// "replica runs unreplicated" from "all counters zero".
	repEnabled      atomic.Bool
	repPeersHealthy atomic.Uint64
	repFanoutWrites atomic.Uint64
	repRepairHits   atomic.Uint64
	repSweepRuns    atomic.Uint64
	repSweepDiffs   atomic.Uint64
}

func (r *replicaState) setErr(err error) {
	if err == nil {
		r.lastErr.Store(nil)
		return
	}
	s := err.Error()
	r.lastErr.Store(&s)
}

func (r *replicaState) errString() string {
	if p := r.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// fleetView is one immutable generation of the replica set and its
// consistent-hash ring. Routing paths snapshot it once per request;
// PUT /v1/fleet swaps in a new generation atomically.
type fleetView struct {
	replicas []*replicaState
	ring     *hashRing
}

func newFleetView(reps []*replicaState, vnodes int) *fleetView {
	return &fleetView{
		replicas: reps,
		ring:     newRing(len(reps), vnodes, func(i int) string { return reps[i].url }),
	}
}

// byURL resolves a replica in this view, nil when it left the fleet.
func (v *fleetView) byURL(u string) *replicaState {
	for _, r := range v.replicas {
		if r.url == u {
			return r
		}
	}
	return nil
}

// gateway routes the v1 API across a fleet of tapas-serve replicas:
// consistent-hash routing on the search identity (so each replica's
// memory cache concentrates on its share of the key space), active
// health checks with ring-order failover, per-client token-bucket rate
// limiting, job-owner stickiness for the async API, singleflight
// collapse of identical concurrent searches, and hot fleet reload via
// PUT /v1/fleet.
type gateway struct {
	cfg     gatewayConfig
	view    atomic.Pointer[fleetView]
	fleetMu sync.Mutex // serializes fleet updates
	limiter *limiter   // nil when disabled

	proxy  *http.Client // no timeout: searches run long; request contexts bound it
	health *http.Client

	owners *ownerTable
	fps    sync.Map // model name → graph fingerprint
	sf     singleflight

	requests     atomic.Uint64
	rateLimited  atomic.Uint64
	failovers    atomic.Uint64
	sfJoined     atomic.Uint64
	fleetUpdates atomic.Uint64

	reqHist *promtext.Histogram // tapas_request_duration_seconds
}

func newGateway(cfg gatewayConfig) *gateway {
	if cfg.vnodes <= 0 {
		cfg.vnodes = 64
	}
	if cfg.healthInterval <= 0 {
		cfg.healthInterval = 2 * time.Second
	}
	if cfg.healthTimeout <= 0 {
		cfg.healthTimeout = 2 * time.Second
	}
	if cfg.jobTableSize <= 0 {
		cfg.jobTableSize = 4096
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	gw := &gateway{
		cfg:     cfg,
		proxy:   &http.Client{},
		health:  &http.Client{Timeout: cfg.healthTimeout},
		owners:  newOwnerTable(cfg.jobTableSize),
		reqHist: promtext.NewHistogram(nil),
	}
	reps := make([]*replicaState, 0, len(cfg.replicas))
	for _, u := range cfg.replicas {
		rs := &replicaState{url: strings.TrimRight(u, "/")}
		rs.healthy.Store(true) // optimistic until the first check
		reps = append(reps, rs)
	}
	gw.view.Store(newFleetView(reps, cfg.vnodes))
	if cfg.rate > 0 {
		burst := cfg.burst
		if burst <= 0 {
			burst = int(math.Max(1, 2*cfg.rate))
		}
		gw.limiter = newLimiter(cfg.rate, burst)
	}
	return gw
}

// fleet snapshots the current replica generation.
func (gw *gateway) fleet() *fleetView { return gw.view.Load() }

// handler wires the gateway's HTTP surface.
func (gw *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", gw.search)
	mux.HandleFunc("POST /v1/search:batch", gw.search)
	mux.HandleFunc("POST /v1/jobs", gw.keyed)
	mux.HandleFunc("GET /v1/jobs", gw.jobsList)
	mux.HandleFunc("GET /v1/jobs/{id}", gw.jobByID)
	mux.HandleFunc("DELETE /v1/jobs/{id}", gw.jobByID)
	mux.HandleFunc("GET /v1/jobs/{id}/events", gw.jobByID)
	mux.HandleFunc("GET /v1/models", gw.anyReplica)
	mux.HandleFunc("GET /v1/fleet", gw.fleetGet)
	mux.HandleFunc("PUT /v1/fleet", gw.fleetPut)
	mux.HandleFunc("GET /v1/healthz", gw.healthz)
	mux.HandleFunc("GET /metrics", gw.metrics)
	th := trace.Handler(gw.cfg.rec)
	mux.Handle("GET /v1/traces", th)
	mux.Handle("GET /v1/traces/", th)
	return gw.withObs(mux)
}

// ---------------------------------------------------------------------------
// Routing

// routeKey computes the consistent-hash identity of one request,
// mirroring the engine's cache key: graph fingerprint × device count ×
// cluster preset × result-changing options. Worker counts are excluded
// (results are worker-independent), so differently-paced requests for
// one plan land on one replica and hit its cache. Unparseable bodies
// hash raw — stably, so even a request the replica will 400 routes
// consistently; batches hash as a unit.
func (gw *gateway) routeKey(path string, body []byte) string {
	if strings.HasSuffix(path, ":batch") {
		return "batch:" + string(body)
	}
	var req service.SearchRequest
	if err := json.Unmarshal(body, &req); err == nil {
		if fp, ok := gw.fingerprint(req); ok {
			return fmt.Sprintf("%s|%d|%s|%v|%d", fp, req.GPUs, req.Cluster, req.Exhaustive, req.TimeBudgetMS)
		}
	}
	return "raw:" + string(body)
}

// fingerprint resolves a request's structural graph fingerprint — the
// same identity the replicas key their caches and stores by, so routing
// is stable under model renames and across spec-vs-model phrasing of
// the same graph. Registered models are memoized; inline specs are
// parsed per request (bounded by maxBodyBytes).
func (gw *gateway) fingerprint(req service.SearchRequest) (string, bool) {
	if req.Spec != "" {
		g, err := graphio.Parse(strings.NewReader(req.Spec))
		if err != nil {
			return "", false
		}
		return g.Fingerprint(), true
	}
	if req.Model == "" {
		return "", false
	}
	if v, ok := gw.fps.Load(req.Model); ok {
		return v.(string), true
	}
	g, err := models.Build(req.Model)
	if err != nil {
		return "", false
	}
	fp := g.Fingerprint()
	gw.fps.Store(req.Model, fp)
	return fp, true
}

// candidates orders every replica of one fleet generation for one key:
// the ring order, healthy replicas first. Unhealthy replicas stay on
// the tail as a last resort — if the whole fleet looks down, trying
// beats a blind 502.
func (v *fleetView) candidates(key string) []*replicaState {
	ringOrder := v.ring.order(key)
	out := make([]*replicaState, 0, len(ringOrder))
	for _, i := range ringOrder {
		if v.replicas[i].healthy.Load() {
			out = append(out, v.replicas[i])
		}
	}
	for _, i := range ringOrder {
		if !v.replicas[i].healthy.Load() {
			out = append(out, v.replicas[i])
		}
	}
	return out
}

// healthyFirst is candidates for requests with no routing identity.
func (v *fleetView) healthyFirst() []*replicaState {
	out := make([]*replicaState, 0, len(v.replicas))
	for _, r := range v.replicas {
		if r.healthy.Load() {
			out = append(out, r)
		}
	}
	for _, r := range v.replicas {
		if !r.healthy.Load() {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Proxying

// search proxies POST /v1/search and /v1/search:batch, collapsing
// identical concurrent requests into one upstream call: searches are
// deterministic and cached by the replicas, so N clients asking the
// exact same body during a cold search need exactly one replica
// execution — the other N-1 wait and share the answer. Collapse is
// keyed by path + raw body, so only byte-identical requests join.
func (gw *gateway) search(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, fmt.Sprintf("read request body: %v", err))
		return
	}
	key := r.URL.Path + "\x00" + string(body)
	res, joined, ok := gw.sf.do(r.Context(), key, func() (sfResult, bool) {
		return gw.fetch(r, body)
	})
	if !ok {
		// The leader failed or this client's context died while waiting;
		// if the client is still here, give it its own upstream attempt
		// rather than inheriting the leader's failure.
		if r.Context().Err() != nil {
			return
		}
		res, ok = gw.fetch(r, body)
		if !ok {
			writeJSONErr(w, http.StatusBadGateway, "no replica reachable")
			return
		}
	}
	if joined {
		gw.sfJoined.Add(1)
	}
	h := w.Header()
	for k, vs := range res.header {
		if hopByHop(k) {
			continue
		}
		h[k] = vs
	}
	h.Set(replicaHeader, res.rep.url)
	if joined {
		h.Set(singleflightHeader, "joined")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// fetch runs one search upstream with ring-order failover, buffering
// the full response so singleflight followers can share it.
func (gw *gateway) fetch(r *http.Request, body []byte) (sfResult, bool) {
	cands := gw.fleet().candidates(gw.routeKey(r.URL.Path, body))
	for n, rep := range cands {
		resp, err := gw.send(r, rep, body)
		if err != nil {
			if r.Context().Err() != nil {
				return sfResult{}, false // the client went away; nothing to answer
			}
			gw.noteSendFailure(rep, err)
			if n < len(cands)-1 {
				gw.failovers.Add(1)
				gw.cfg.logf("replica %s unreachable (%v), failing over", rep.url, err)
			}
			continue
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if rerr != nil {
			gw.noteSendFailure(rep, rerr)
			continue
		}
		rep.proxied.Add(1)
		return sfResult{rep: rep, status: resp.StatusCode, header: resp.Header, body: respBody}, true
	}
	return sfResult{}, false
}

// keyed proxies one body-routed request (job submit) to its key's
// replica, failing over along the ring.
func (gw *gateway) keyed(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, fmt.Sprintf("read request body: %v", err))
		return
	}
	submit := r.URL.Path == "/v1/jobs"
	cands := gw.fleet().candidates(gw.routeKey(r.URL.Path, body))
	rep, status, respBody, ok := gw.forward(w, r, body, cands, false)
	if ok && submit && status == http.StatusAccepted {
		var st service.JobStatus
		if err := json.Unmarshal(respBody, &st); err == nil && st.ID != "" {
			gw.owners.put(st.ID, rep.url)
		}
	}
}

// jobByID proxies status/cancel/events for one job to the replica that
// owns it — the one its submit was routed to — probing the fleet when
// the owner is unknown (e.g. after a gateway restart or fleet update)
// OR when the pinned replica disclaims the job: a replica restarted
// with durable jobs may see its orphans adopted by a shared-corpus
// peer, so a stale pin's 404 is that replica's answer, not the fleet's.
// The probe re-pins to whichever replica actually holds the job.
func (gw *gateway) jobByID(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	view := gw.fleet()
	id := r.PathValue("id")
	stream := strings.HasSuffix(r.URL.Path, "/events")
	if u, ok := gw.owners.get(id); ok {
		rep := view.byURL(u)
		if rep == nil {
			gw.owners.drop(id) // the pinned replica left the fleet
		} else {
			resp, err := gw.send(r, rep, nil)
			switch {
			case err != nil:
				if r.Context().Err() != nil {
					return // the client went away; nothing to answer
				}
				gw.noteSendFailure(rep, err)
				gw.owners.drop(id)
			case resp.StatusCode == http.StatusNotFound:
				resp.Body.Close()
				gw.owners.drop(id)
			default:
				gw.relay(w, r, rep, resp, stream, false)
				return
			}
		}
		// fall through to the ownership probe
	}
	for _, rep := range view.healthyFirst() {
		resp, err := gw.send(r, rep, nil)
		if err != nil {
			gw.noteSendFailure(rep, err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		if resp.StatusCode/100 == 2 {
			// Only a successful answer proves ownership: a 5xx/503 from
			// a replica that merely happens to be unwell must not pin
			// the job to it.
			gw.owners.put(id, rep.url)
		}
		gw.relay(w, r, rep, resp, stream, false)
		return
	}
	writeJSONErr(w, http.StatusNotFound, fmt.Sprintf("job %q not found on any replica", id))
}

// jobsList merges every healthy replica's job listing into one fleet
// view.
func (gw *gateway) jobsList(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	merged := make([]json.RawMessage, 0)
	reached := false
	for _, rep := range gw.fleet().healthyFirst() {
		resp, err := gw.send(r, rep, nil)
		if err != nil {
			gw.noteSendFailure(rep, err)
			continue
		}
		var body struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode/100 != 2 {
			continue
		}
		reached = true
		rep.proxied.Add(1)
		merged = append(merged, body.Jobs...)
	}
	if !reached {
		writeJSONErr(w, http.StatusBadGateway, "no replica reachable")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"jobs": merged})
}

// anyReplica proxies a replica-agnostic request to whichever healthy
// replica answers first.
func (gw *gateway) anyReplica(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	if !gw.allow(w, r) {
		return
	}
	gw.forward(w, r, nil, gw.fleet().healthyFirst(), false)
}

// forward tries candidates in order until one answers, relaying its
// response. A replica that cannot be reached is marked unhealthy
// (passively; the active checker can restore it) and the next ring node
// is tried — transport failures only, never an answered request.
// Job submissions are not idempotent, so they fail over only on dial
// errors (the request provably never reached the replica); a
// mid-flight failure could mean the job was accepted, and replaying it
// would enqueue a duplicate. Searches are deterministic and cached, so
// any transport failure fails over. Returns the answering replica, the
// status, and (when buffered) the response body.
func (gw *gateway) forward(w http.ResponseWriter, r *http.Request, body []byte, cands []*replicaState, stream bool) (*replicaState, int, []byte, bool) {
	submit := r.Method == http.MethodPost && r.URL.Path == "/v1/jobs"
	for n, rep := range cands {
		resp, err := gw.send(r, rep, body)
		if err != nil {
			if r.Context().Err() != nil {
				return nil, 0, nil, false // the client went away; nothing to answer
			}
			gw.noteSendFailure(rep, err)
			if submit && !isDialError(err) {
				writeJSONErr(w, http.StatusBadGateway,
					fmt.Sprintf("replica %s failed mid-submit; the job may or may not be queued there", rep.url))
				return nil, 0, nil, false
			}
			if n < len(cands)-1 {
				gw.failovers.Add(1)
				gw.cfg.logf("replica %s unreachable (%v), failing over", rep.url, err)
			}
			continue
		}
		status, respBody, ok := gw.relay(w, r, rep, resp, stream, body != nil && r.URL.Path == "/v1/jobs")
		return rep, status, respBody, ok
	}
	writeJSONErr(w, http.StatusBadGateway, "no replica reachable")
	return nil, 0, nil, false
}

// relay copies one replica response to the client. Buffered routes
// return the body bytes (for the submit path's owner bookkeeping);
// stream routes flush through, which keeps SSE live.
func (gw *gateway) relay(w http.ResponseWriter, r *http.Request, rep *replicaState, resp *http.Response, stream, buffer bool) (int, []byte, bool) {
	defer resp.Body.Close()
	rep.proxied.Add(1)
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop(k) {
			continue
		}
		h[k] = vs
	}
	h.Set(replicaHeader, rep.url)
	w.WriteHeader(resp.StatusCode)
	if stream {
		rc := http.NewResponseController(w)
		buf := make([]byte, 16*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return resp.StatusCode, nil, true
				}
				_ = rc.Flush()
			}
			if err != nil {
				return resp.StatusCode, nil, true
			}
		}
	}
	if buffer {
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return resp.StatusCode, nil, false
		}
		_, _ = w.Write(respBody)
		return resp.StatusCode, respBody, true
	}
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode, nil, true
}

// send issues one proxied request to a replica.
func (gw *gateway) send(r *http.Request, rep *replicaState, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, rep.url+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		if hopByHop(k) || strings.EqualFold(k, "Host") {
			continue
		}
		out.Header[k] = vs
	}
	// When this request carries a gateway span, rewrite the propagation
	// headers so the replica's root parents under the gateway hop (same
	// trace ID; the gateway span as parent). An untraced request keeps
	// whatever the client sent.
	trace.Inject(r.Context(), out.Header)
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		prior := r.Header.Get("X-Forwarded-For")
		if prior != "" {
			host = prior + ", " + host
		}
		out.Header.Set("X-Forwarded-For", host)
	}
	return gw.proxy.Do(out)
}

// isDialError reports whether a transport failure happened before any
// byte reached the replica (connection refused, no route) — the only
// failures safe to replay for non-idempotent requests.
func isDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// noteSendFailure records a transport failure against a replica and
// marks it down until the active checker clears it.
func (gw *gateway) noteSendFailure(rep *replicaState, err error) {
	rep.proxyErrors.Add(1)
	rep.healthy.Store(false)
	rep.setErr(err)
}

// hopByHop reports headers that must not cross a proxy.
func hopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Rate limiting

// allow admits one request through the per-client rate limiter, or
// answers 429 with Retry-After and reports false.
func (gw *gateway) allow(w http.ResponseWriter, r *http.Request) bool {
	if gw.limiter == nil {
		return true
	}
	key := r.Header.Get(clientHeader)
	if key == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		} else {
			key = r.RemoteAddr
		}
	}
	ok, wait := gw.limiter.allow(key, time.Now())
	if ok {
		return true
	}
	gw.rateLimited.Add(1)
	secs := retryAfterSeconds(wait)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSONErr(w, http.StatusTooManyRequests,
		fmt.Sprintf("rate limit exceeded for client %q, retry after %ds", key, secs))
	return false
}

// ---------------------------------------------------------------------------
// Fleet reload

// fleetGet answers the current replica set and its health — the same
// rows healthz serves, without the gateway's own counters.
func (gw *gateway) fleetGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"replicas":      gw.replicaRows(gw.fleet()),
		"fleet_updates": gw.fleetUpdates.Load(),
	})
}

// fleetPut hot-reloads the replica ring: the body's replica list
// replaces the current fleet, the consistent-hash ring is rebuilt, and
// the new replicas are health-probed before the call returns — so an
// autoscaler can grow or shrink the fleet without bouncing the proxy.
// Replicas present in both generations keep their state (health,
// counters, in-flight requests); job pins onto removed replicas are
// dropped lazily by the ownership probe.
func (gw *gateway) fleetPut(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Replicas []string `json:"replicas"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSONErr(w, http.StatusBadRequest, fmt.Sprintf("decode fleet: %v", err))
		return
	}
	if len(req.Replicas) == 0 {
		writeJSONErr(w, http.StatusBadRequest, "fleet must list at least one replica")
		return
	}
	urls := make([]string, 0, len(req.Replicas))
	seen := make(map[string]bool)
	for _, raw := range req.Replicas {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			writeJSONErr(w, http.StatusBadRequest, fmt.Sprintf("replica %q is not an http(s) URL", raw))
			return
		}
		clean := strings.TrimRight(u.String(), "/")
		if !seen[clean] {
			seen[clean] = true
			urls = append(urls, clean)
		}
	}

	gw.fleetMu.Lock()
	cur := gw.fleet()
	reps := make([]*replicaState, 0, len(urls))
	added := 0
	for _, u := range urls {
		if rs := cur.byURL(u); rs != nil {
			reps = append(reps, rs) // carry state across the update
			continue
		}
		rs := &replicaState{url: u}
		rs.healthy.Store(true)
		reps = append(reps, rs)
		added++
	}
	next := newFleetView(reps, gw.cfg.vnodes)
	gw.view.Store(next)
	gw.fleetUpdates.Add(1)
	gw.fleetMu.Unlock()
	gw.cfg.logf("fleet updated: %d replicas (%d new, %d dropped)", len(reps), added, len(cur.replicas)-(len(reps)-added))

	// Probe the new generation before answering, so the response's
	// health bits are real, not the optimistic default.
	probeCtx, cancel := context.WithTimeout(r.Context(), gw.cfg.healthTimeout)
	gw.checkView(probeCtx, next)
	cancel()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"replicas":      gw.replicaRows(next),
		"fleet_updates": gw.fleetUpdates.Load(),
	})
}

// ---------------------------------------------------------------------------
// Health

// checkAll probes the current fleet generation's /v1/healthz once.
func (gw *gateway) checkAll(ctx context.Context) { gw.checkView(ctx, gw.fleet()) }

// checkView probes one fleet generation.
func (gw *gateway) checkView(ctx context.Context, v *fleetView) {
	for _, rep := range v.replicas {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := gw.health.Do(req)
		if err != nil {
			if rep.healthy.CompareAndSwap(true, false) {
				gw.cfg.logf("replica %s down: %v", rep.url, err)
			}
			rep.setErr(err)
			continue
		}
		var hb struct {
			TasksExecuted uint64 `json:"tasks_executed"`
			TasksFailed   uint64 `json:"tasks_failed"`
			Replication   *struct {
				PeersHealthy uint64 `json:"peers_healthy"`
				FanoutWrites uint64 `json:"fanout_writes"`
				RepairHits   uint64 `json:"repair_hits"`
				SweepRuns    uint64 `json:"sweep_runs"`
				SweepDiffs   uint64 `json:"sweep_diffs"`
			} `json:"replication"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hb) == nil {
			rep.tasksExecuted.Store(hb.TasksExecuted)
			rep.tasksFailed.Store(hb.TasksFailed)
			if rp := hb.Replication; rp != nil {
				rep.repEnabled.Store(true)
				rep.repPeersHealthy.Store(rp.PeersHealthy)
				rep.repFanoutWrites.Store(rp.FanoutWrites)
				rep.repRepairHits.Store(rp.RepairHits)
				rep.repSweepRuns.Store(rp.SweepRuns)
				rep.repSweepDiffs.Store(rp.SweepDiffs)
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		up := resp.StatusCode/100 == 2
		if up {
			rep.setErr(nil)
			if rep.healthy.CompareAndSwap(false, true) {
				gw.cfg.logf("replica %s back up", rep.url)
			}
		} else {
			if rep.healthy.CompareAndSwap(true, false) {
				gw.cfg.logf("replica %s unhealthy: status %d", rep.url, resp.StatusCode)
			}
			rep.setErr(fmt.Errorf("healthz returned %d", resp.StatusCode))
		}
	}
}

// runHealth actively checks the fleet until ctx dies.
func (gw *gateway) runHealth(ctx context.Context) {
	t := time.NewTicker(gw.cfg.healthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			gw.checkAll(ctx)
		}
	}
}

// ---------------------------------------------------------------------------
// Introspection

// replicaHealth is one replica's row in the gateway's health view.
type replicaHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
	// TasksExecuted/TasksFailed mirror the replica's /v1/tasks counters
	// as of its last health check — the fleet's distributed cold-search
	// activity at a glance.
	TasksExecuted uint64 `json:"tasks_executed"`
	TasksFailed   uint64 `json:"tasks_failed"`
	// Replication mirrors the replica's store-replication counters as
	// of its last health check; nil when it runs unreplicated.
	Replication *replicaReplication `json:"replication,omitempty"`
}

// replicaReplication is the replicated-corpus slice of one replica's
// healthz, as mirrored by the gateway.
type replicaReplication struct {
	PeersHealthy uint64 `json:"peers_healthy"`
	FanoutWrites uint64 `json:"fanout_writes"`
	RepairHits   uint64 `json:"repair_hits"`
	SweepRuns    uint64 `json:"sweep_runs"`
	SweepDiffs   uint64 `json:"sweep_diffs"`
}

// replicaRows renders one fleet generation's health rows.
func (gw *gateway) replicaRows(v *fleetView) []replicaHealth {
	reps := make([]replicaHealth, 0, len(v.replicas))
	for _, rep := range v.replicas {
		row := replicaHealth{
			URL: rep.url, Healthy: rep.healthy.Load(), LastError: rep.errString(),
			TasksExecuted: rep.tasksExecuted.Load(), TasksFailed: rep.tasksFailed.Load(),
		}
		if rep.repEnabled.Load() {
			row.Replication = &replicaReplication{
				PeersHealthy: rep.repPeersHealthy.Load(),
				FanoutWrites: rep.repFanoutWrites.Load(),
				RepairHits:   rep.repRepairHits.Load(),
				SweepRuns:    rep.repSweepRuns.Load(),
				SweepDiffs:   rep.repSweepDiffs.Load(),
			}
		}
		reps = append(reps, row)
	}
	return reps
}

// healthz answers the gateway's fleet view: 200 while at least one
// replica is healthy, 503 when none is.
func (gw *gateway) healthz(w http.ResponseWriter, r *http.Request) {
	view := gw.fleet()
	reps := gw.replicaRows(view)
	healthy := 0
	var tasksExecuted, tasksFailed, repFanout, repRepairs, repSweepDiffs uint64
	replicated := 0
	for i, rep := range view.replicas {
		if reps[i].Healthy {
			healthy++
		}
		tasksExecuted += reps[i].TasksExecuted
		tasksFailed += reps[i].TasksFailed
		if rep.repEnabled.Load() {
			replicated++
			repFanout += rep.repFanoutWrites.Load()
			repRepairs += rep.repRepairHits.Load()
			repSweepDiffs += rep.repSweepDiffs.Load()
		}
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case healthy == 0:
		status = "unavailable"
		code = http.StatusServiceUnavailable
	case healthy < len(view.replicas):
		status = "degraded"
	}
	body := map[string]any{
		"status":              status,
		"replicas":            reps,
		"fleet_peers_healthy": healthy,
		"tasks_executed":      tasksExecuted,
		"tasks_failed":        tasksFailed,
		"requests_total":      gw.requests.Load(),
		"rate_limited_total":  gw.rateLimited.Load(),
		"failovers_total":     gw.failovers.Load(),
		"singleflight_total":  gw.sfJoined.Load(),
		"fleet_updates":       gw.fleetUpdates.Load(),
	}
	if replicated > 0 {
		body["replication"] = map[string]any{
			"replicas":      replicated,
			"fanout_writes": repFanout,
			"repair_hits":   repRepairs,
			"sweep_diffs":   repSweepDiffs,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// metrics serves the gateway's route counters in Prometheus text form.
func (gw *gateway) metrics(w http.ResponseWriter, r *http.Request) {
	view := gw.fleet()
	m := promtext.New()
	m.Counter("tapas_gateway_requests_total", "Requests accepted for routing.", float64(gw.requests.Load()), nil)
	m.Counter("tapas_gateway_rate_limited_total", "Requests answered 429 by the per-client limiter.", float64(gw.rateLimited.Load()), nil)
	m.Counter("tapas_gateway_failovers_total", "Requests moved to the next ring node after a transport failure.", float64(gw.failovers.Load()), nil)
	m.Counter("tapas_gateway_singleflight_total", "Search responses shared from another client's identical in-flight request.", float64(gw.sfJoined.Load()), nil)
	m.Counter("tapas_gateway_fleet_updates_total", "Hot fleet reloads applied via PUT /v1/fleet.", float64(gw.fleetUpdates.Load()), nil)
	m.Gauge("tapas_gateway_job_owners", "Job-to-replica stickiness entries resident.", float64(gw.owners.len()), nil)
	healthy := 0
	var repFanout, repRepairs, repSweepDiffs float64
	for _, rep := range view.replicas {
		l := promtext.Labels{"replica": rep.url}
		m.Counter("tapas_gateway_proxied_total", "Responses relayed, per replica.", float64(rep.proxied.Load()), l)
		m.Counter("tapas_gateway_proxy_errors_total", "Transport failures, per replica.", float64(rep.proxyErrors.Load()), l)
		m.Counter("tapas_gateway_replica_tasks_executed_total", "Prefix tasks the replica executed for coordinators, as of its last health check.", float64(rep.tasksExecuted.Load()), l)
		m.Counter("tapas_gateway_replica_tasks_failed_total", "Rejected or failed /v1/tasks batches on the replica, as of its last health check.", float64(rep.tasksFailed.Load()), l)
		if rep.repEnabled.Load() {
			m.Gauge("tapas_gateway_replica_store_peers_healthy", "Replication peers the replica reports reachable, as of its last health check.", float64(rep.repPeersHealthy.Load()), l)
			repFanout += float64(rep.repFanoutWrites.Load())
			repRepairs += float64(rep.repRepairHits.Load())
			repSweepDiffs += float64(rep.repSweepDiffs.Load())
		}
		up := 0.0
		if rep.healthy.Load() {
			up = 1
			healthy++
		}
		m.Gauge("tapas_gateway_replica_healthy", "1 while the replica passes health checks.", up, l)
	}
	m.Gauge("tapas_gateway_fleet_peers_healthy", "Replicas currently passing health checks.", float64(healthy), nil)
	m.Counter("tapas_gateway_replication_fanout_writes_total", "Store fanout writes summed across the fleet's last health checks.", repFanout, nil)
	m.Counter("tapas_gateway_replication_repair_hits_total", "Store read-repairs summed across the fleet's last health checks.", repRepairs, nil)
	m.Counter("tapas_gateway_replication_sweep_diffs_total", "Anti-entropy record copies summed across the fleet's last health checks.", repSweepDiffs, nil)
	m.Histogram("tapas_request_duration_seconds",
		"Proxied request latency by wall clock, all routed endpoints.", gw.reqHist, nil)
	promtext.AddRuntime(m)
	w.Header().Set("Content-Type", promtext.ContentType)
	_, _ = m.WriteTo(w)
}

// writeJSONErr emits the daemon-compatible JSON error envelope.
func writeJSONErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ---------------------------------------------------------------------------
// Job-owner stickiness

// ownerTable remembers which replica owns each submitted job, FIFO
// bounded (job IDs are unguessable and short-lived; on overflow,
// gateway restart, or fleet update the probe path recovers ownership).
// Owners are pinned by URL, not index, so a fleet reload cannot
// silently repoint a pin at a different replica.
type ownerTable struct {
	mu    sync.Mutex
	m     map[string]string
	order []string
	max   int
}

func newOwnerTable(max int) *ownerTable {
	return &ownerTable{m: make(map[string]string), max: max}
}

func (o *ownerTable) put(id, url string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.m[id]; !ok {
		o.order = append(o.order, id)
		for len(o.order) > o.max {
			delete(o.m, o.order[0])
			o.order = o.order[1:]
		}
	}
	o.m[id] = url
}

// drop forgets a pin proven stale (the pinned replica disclaimed or
// could not answer for the job), so the next lookup probes afresh.
func (o *ownerTable) drop(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.m[id]; !ok {
		return
	}
	delete(o.m, id)
	for i, other := range o.order {
		if other == id {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
}

func (o *ownerTable) get(id string) (string, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	u, ok := o.m[id]
	return u, ok
}

func (o *ownerTable) len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.m)
}
