package main

import (
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tapas/internal/logkv"
	"tapas/internal/trace"
)

// This file is the gateway's observability edge: the middleware that
// starts (or adopts) the trace root for every proxied request, times it
// into the request histogram, and emits the key=value request log. The
// replica-side mirror lives in service/obs.go; together they give one
// request a span on every hop it touches.

// clientName names the request's caller the way the rate limiter keys
// it: the X-Tapas-Client header when present, else the client IP.
func clientName(r *http.Request) string {
	if c := r.Header.Get(clientHeader); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// obsWriter captures the response status and lets the request log read
// the X-Tapas-Replica header relay sets. It forwards Flush so SSE
// relays stay live through the wrapper.
type obsWriter struct {
	http.ResponseWriter
	status int
}

func (w *obsWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *obsWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *obsWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withObs wraps the gateway mux with tracing and request accounting:
// adopt the caller's trace (X-Tapas-Trace/X-Tapas-Parent) or sample a
// fresh one, echo the trace ID back to the client, time the request
// into tapas_request_duration_seconds, and emit one key=value request
// log line naming the replica that answered. /metrics and the flight
// recorder's own endpoints are exempt — scraping must not fill the
// ring buffer it reads.
func (gw *gateway) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if path == "/metrics" || path == "/v1/traces" || strings.HasPrefix(path, "/v1/traces/") {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		client := clientName(r)
		traceID, parentID := trace.Extract(r.Header)
		ctx, span := gw.cfg.rec.StartRequest(r.Context(), r.Method+" "+path, traceID, parentID)
		if span != nil {
			span.SetAttr("client", client)
			w.Header().Set(trace.TraceHeader, span.TraceID())
		}
		sw := &obsWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		replica := sw.Header().Get(replicaHeader)
		gw.reqHist.Observe(dur.Seconds())
		span.SetAttr("status", strconv.Itoa(status))
		if replica != "" {
			span.SetAttr("replica", replica)
		}
		span.End()
		slow := gw.cfg.traceSlow > 0 && dur >= gw.cfg.traceSlow
		if gw.cfg.logRequests || slow {
			event := "request"
			if slow {
				event = "slow_request"
			}
			gw.cfg.logf("%s", logkv.Line(event,
				"method", r.Method,
				"path", path,
				"status", status,
				"dur", dur,
				"client", client,
				"replica", replica,
				"trace", span.TraceID(),
			))
		}
	})
}
