package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// binary is built once in TestMain and shared by every smoke test.
var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tapas-search-cli")
	if err != nil {
		panic(err)
	}
	binary = filepath.Join(dir, "tapas-search")
	build := exec.Command("go", "build", "-o", binary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		panic("building tapas-search: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binary, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("tapas-search %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLISearchSmallModel(t *testing.T) {
	out := run(t, "-model", "t5-100M", "-gpus", "4", "-workers", "2")
	for _, want := range []string{"model:", "plan:", "search time:", "cost model:", "simulated:", "memory:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The plan line must carry at least one pattern×count entry.
	if !regexp.MustCompile(`plan:\s+\S+×\d+`).MatchString(out) {
		t.Errorf("plan line not parseable:\n%s", out)
	}
}

func TestCLIList(t *testing.T) {
	out := run(t, "-list")
	if !strings.Contains(out, "t5-100M") {
		t.Errorf("-list missing t5-100M:\n%s", out)
	}
}

func TestCLIBatchSearch(t *testing.T) {
	out := run(t, "-model", "t5-100M,resnet-26M", "-gpus", "4")
	for _, model := range []string{"t5-100M", "resnet-26M"} {
		if !regexp.MustCompile(model + `\s+4 GPUs\s+plan:`).MatchString(out) {
			t.Errorf("batch output missing line for %s:\n%s", model, out)
		}
	}
}

func TestCLIUnknownModelFails(t *testing.T) {
	cmd := exec.Command(binary, "-model", "no-such-model")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("want non-zero exit for unknown model, got:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("want non-zero exit code, got %v", err)
	}
}
