// Command tapas-search derives a tensor-parallel strategy for one of the
// registered models and reports the plan, its predicted cost and the
// simulated training performance. Ctrl-C cancels an in-flight search
// cleanly; -timeout bounds it; -progress streams live pipeline events to
// stderr.
//
// Usage:
//
//	tapas-search -model t5-770M -gpus 8
//	tapas-search -model t5-770M,moe-1.3B,bert-large -gpus 8   # batch via SearchAll
//	tapas-search -model resnet-228M -gpus 16 -baseline megatron
//	tapas-search -workers 4 -timeout 2m -progress -model t5-1.4B -gpus 32
//	tapas-search -serve-addr http://localhost:8080 -model t5-770M -gpus 8   # remote daemon
//	tapas-search -serve-addr http://localhost:8080 -model t5-770M,bert-large -gpus 8   # remote batch
//	tapas-search -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tapas"
	"tapas/internal/cli"
	"tapas/internal/graphio"
	"tapas/service"
)

func main() {
	model := flag.String("model", "t5-770M", "model name (see -list); a comma-separated list runs a concurrent batch search")
	spec := flag.String("spec", "", "load a custom model from a graphio spec file instead of -model")
	gpus := flag.Int("gpus", 8, "total GPU count (V100 nodes of 8)")
	baseline := flag.String("baseline", "", "derive with a baseline planner instead of TAPAS (dp, deepspeed, megatron, ffn-only, mha-only, gshard, alpa, flexflow)")
	exhaustive := flag.Bool("es", false, "use exhaustive search (TAPAS-ES) instead of subgraph pruning")
	workers := flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS, 1 = serial; the plan is identical either way)")
	timeout := flag.Duration("timeout", 0, "abort the search after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "stream live search progress to stderr")
	serveAddr := flag.String("serve-addr", "", "post the search to a tapas-serve daemon at this base URL instead of searching in-process")
	list := flag.Bool("list", false, "list registered models and exit")
	verbose := flag.Bool("v", false, "print the per-GraphNode pattern assignment")
	flag.Parse()

	if *list {
		for _, m := range tapas.Models() {
			fmt.Println(m)
		}
		return
	}

	// Ctrl-C (or SIGTERM from a supervisor) cancels the in-flight search;
	// -timeout layers a deadline on top of the same context.
	ctx, stop := cli.Context(*timeout)
	defer stop()

	var names []string
	for _, n := range strings.Split(*model, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 1 {
		*model = names[0] // tolerate a stray trailing comma
	}
	if len(names) > 1 && (*spec != "" || *baseline != "") {
		fmt.Fprintln(os.Stderr, "a comma-separated -model batch cannot be combined with -baseline or -spec")
		os.Exit(2)
	}

	if *serveAddr != "" {
		if *baseline != "" {
			fmt.Fprintln(os.Stderr, "-serve-addr supports TAPAS searches only (no -baseline)")
			os.Exit(2)
		}
		if len(names) > 1 {
			if *progress {
				// The batch endpoint is synchronous; only single remote
				// searches stream SSE progress.
				fmt.Fprintln(os.Stderr, "note: -progress is ignored in remote batch mode")
			}
			runRemoteBatch(ctx, *serveAddr, names, *gpus, *workers, *exhaustive, *verbose)
			return
		}
		runRemote(ctx, *serveAddr, *model, *spec, *gpus, *workers, *exhaustive, *progress, *verbose)
		return
	}

	engOpts := []tapas.Option{
		tapas.WithWorkers(*workers),
		tapas.WithExhaustive(*exhaustive),
	}
	if *progress {
		engOpts = append(engOpts, tapas.WithProgress(printProgress))
	}
	eng := tapas.NewEngine(engOpts...)
	if len(names) > 1 {
		specs := make([]tapas.SearchSpec, len(names))
		for i, n := range names {
			specs[i] = tapas.SearchSpec{Model: n, GPUs: *gpus}
		}
		results, err := eng.SearchAll(ctx, specs)
		for _, res := range results {
			if res == nil {
				continue
			}
			fmt.Printf("%-16s %2d GPUs  plan: %-60s  search=%v  %s\n",
				res.ModelName, res.GPUs, res.Strategy.Describe(), res.TotalTime.Round(1e6), res.Report)
			if *verbose {
				printAssignment(res)
				fmt.Println()
			}
		}
		if err != nil {
			// One line per failed spec, so a partial failure cannot hide
			// inside a joined message.
			for _, e := range splitJoined(err) {
				fmt.Fprintln(os.Stderr, "error:", e)
			}
			os.Exit(cli.ExitCode(err))
		}
		return
	}

	var (
		res *tapas.Result
		err error
	)
	switch {
	case *spec != "":
		f, ferr := os.Open(*spec)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		g, perr := graphio.Parse(f)
		f.Close()
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
		if *baseline != "" {
			res, err = eng.BaselineGraph(ctx, *baseline, g, *gpus)
		} else {
			res, err = eng.SearchGraph(ctx, g, *gpus)
		}
	case *baseline != "":
		res, err = eng.Baseline(ctx, *baseline, *model, *gpus)
	default:
		res, err = eng.Search(ctx, *model, *gpus)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cli.ExitCode(err))
	}

	system := "TAPAS"
	if *baseline != "" {
		system = *baseline
	} else if *exhaustive {
		system = "TAPAS-ES"
	}
	fmt.Printf("model:        %s on %d GPUs (%s)\n", res.ModelName, res.GPUs, system)
	fmt.Printf("plan:         %s\n", res.Strategy.Describe())
	fmt.Printf("search time:  total=%v (group=%v mine=%v search=%v)\n",
		res.TotalTime.Round(1e6), res.GroupTime.Round(1e6), res.MineTime.Round(1e6), res.SearchTime.Round(1e6))
	fmt.Printf("search space: %d unique subgraphs, %d strategies examined, %d pruned\n",
		res.UniqueGraphs, res.Examined, res.Pruned)
	fmt.Printf("cost model:   %.4fs/iter predicted\n", res.Strategy.Cost.Total())
	fmt.Printf("simulated:    %s\n", res.Report)
	fmt.Printf("memory:       %.2f GiB/device (limit 32 GiB)\n", float64(res.Strategy.MemPerDev)/(1<<30))

	if *verbose {
		fmt.Println()
		printAssignment(res)
	}
}

// runRemote posts the search to a tapas-serve daemon. With -progress it
// goes through the async job API and streams live SSE events to stderr;
// otherwise it is one synchronous POST /v1/search.
func runRemote(ctx context.Context, addr, model, spec string, gpus, workers int, exhaustive, progress, verbose bool) {
	c := service.NewClient(addr)
	req := service.SearchRequest{
		Model:      model,
		GPUs:       gpus,
		Workers:    workers,
		Exhaustive: exhaustive,
	}
	if spec != "" {
		body, err := os.ReadFile(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		req.Model = ""
		req.Spec = string(body)
	}

	var (
		resp *service.SearchResponse
		err  error
	)
	if progress {
		resp, err = runRemoteJob(ctx, c, req)
	} else {
		resp, err = c.Search(ctx, req)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cli.ExitCode(err))
	}
	printResponse(resp, verbose)
}

// runRemoteBatch posts a comma-separated model batch to a daemon's
// POST /v1/search:batch: positional results, one line per model, one
// stderr line per failed item (mirroring the local batch mode).
func runRemoteBatch(ctx context.Context, addr string, names []string, gpus, workers int, exhaustive, verbose bool) {
	c := service.NewClient(addr)
	reqs := make([]service.SearchRequest, len(names))
	for i, n := range names {
		reqs[i] = service.SearchRequest{Model: n, GPUs: gpus, Workers: workers, Exhaustive: exhaustive}
	}
	resp, err := c.SearchBatch(ctx, reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cli.ExitCode(err))
	}
	if len(resp.Results) != len(names) {
		fmt.Fprintf(os.Stderr, "daemon answered %d results for %d requests\n", len(resp.Results), len(names))
		os.Exit(1)
	}
	failed := false
	for i, item := range resp.Results {
		if !item.OK() {
			failed = true
			fmt.Fprintf(os.Stderr, "error: %s on %d GPUs: %s (status %d)\n", names[i], gpus, item.Error, item.Status)
			continue
		}
		r := item.Response
		served := "cold"
		switch {
		case r.CacheHit:
			served = "cache"
		case r.StoreHit:
			served = "store"
		}
		fmt.Printf("%-16s %2d GPUs  plan: %-60s  search=%.3fs  %.3fs/iter, %.2f TFLOPS/GPU (%s)\n",
			r.Model, r.GPUs, r.PlanSummary, r.Timing.TotalSeconds,
			r.Report.IterationSeconds, r.Report.TFLOPSPerGPU, served)
		if verbose && r.Plan != nil {
			fmt.Println("assignment:")
			for _, a := range r.Plan.Assignments {
				fmt.Printf("  %-40s %-20s in=%-3s out=%-3s  %s\n", a.Name, a.Pattern, a.In, a.Out, a.SRC)
			}
			fmt.Println()
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runRemoteJob drives the async path: submit, stream events, fetch the
// embedded result.
func runRemoteJob(ctx context.Context, c *service.Client, req service.SearchRequest) (*service.SearchResponse, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "submitted %s\n", st.ID)
	err = c.StreamEvents(ctx, st.ID, func(ev service.JobEvent) error {
		switch ev.Type {
		case service.EventState:
			fmt.Fprintf(os.Stderr, "[%s] %s\n", ev.JobID, ev.State)
		case service.EventProgress:
			fmt.Fprintf(os.Stderr, "[%8s] %s %s %d/%d classes, %d strategies examined\n",
				time.Duration(ev.ElapsedMS)*time.Millisecond, ev.Phase, ev.Kind, ev.ClassesDone, ev.ClassesTotal, ev.Examined)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if final.State != service.JobDone {
		return nil, fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return final.Result, nil
}

// printResponse renders a daemon response in the local output format.
func printResponse(resp *service.SearchResponse, verbose bool) {
	system := "TAPAS"
	served := "cold"
	if resp.CacheHit {
		served = "served from cache"
	}
	fmt.Printf("model:        %s on %d GPUs (%s, remote, %s)\n", resp.Model, resp.GPUs, system, served)
	fmt.Printf("plan:         %s\n", resp.PlanSummary)
	fmt.Printf("search time:  total=%.3fs (group=%.3fs mine=%.3fs search=%.3fs)\n",
		resp.Timing.TotalSeconds, resp.Timing.GroupSeconds, resp.Timing.MineSeconds, resp.Timing.SearchSeconds)
	fmt.Printf("search space: %d unique subgraphs, %d strategies examined, %d pruned\n",
		resp.Timing.UniqueGraphs, resp.Timing.Examined, resp.Timing.Pruned)
	fmt.Printf("cost model:   %.4fs/iter predicted\n", resp.CostSeconds)
	fmt.Printf("simulated:    %.3fs/iter, %.2f TFLOPS/GPU\n",
		resp.Report.IterationSeconds, resp.Report.TFLOPSPerGPU)
	fmt.Printf("memory:       %.2f GiB/device (limit 32 GiB)\n", float64(resp.MemBytesPerDevice)/(1<<30))
	if verbose && resp.Plan != nil {
		fmt.Println()
		fmt.Println("assignment:")
		for _, a := range resp.Plan.Assignments {
			fmt.Printf("  %-40s %-20s in=%-3s out=%-3s  %s\n", a.Name, a.Pattern, a.In, a.Out, a.SRC)
		}
	}
}

// printProgress renders one live pipeline event on stderr.
func printProgress(ev tapas.ProgressEvent) {
	switch {
	case ev.Kind == tapas.PhaseProgress:
		fmt.Fprintf(os.Stderr, "[%8s] %s/%d: %s %d/%d classes, %d strategies examined\n",
			ev.Elapsed.Round(time.Millisecond), ev.Model, ev.GPUs, ev.Phase, ev.ClassesDone, ev.ClassesTotal, ev.Examined)
	case ev.Kind == tapas.PhaseExit && ev.Phase == tapas.PhaseSearch:
		fmt.Fprintf(os.Stderr, "[%8s] %s/%d: %s done (%d classes, %d examined)\n",
			ev.Elapsed.Round(time.Millisecond), ev.Model, ev.GPUs, ev.Phase, ev.ClassesTotal, ev.Examined)
	case ev.Kind == tapas.PhaseEnter:
		fmt.Fprintf(os.Stderr, "[%8s] %s/%d: %s...\n",
			ev.Elapsed.Round(time.Millisecond), ev.Model, ev.GPUs, ev.Phase)
	}
}

// splitJoined unpacks an errors.Join result into its parts (or returns
// the error itself when it is not a joined error).
func splitJoined(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// printAssignment dumps the per-GraphNode pattern assignment of a result.
func printAssignment(res *tapas.Result) {
	fmt.Println("assignment:")
	for _, gn := range res.Strategy.Graph.TopoOrder() {
		p := res.Strategy.Assign[gn]
		fmt.Printf("  %-40s %-20s in=%-3s out=%-3s  %s\n",
			gn.String(), p.Name, p.In, p.Out, p.SRC)
	}
}
