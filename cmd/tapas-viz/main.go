// Command tapas-viz renders the sharding strategies of a model's repeated
// layer the way the paper's Figure 9 draws them, plus the full
// per-GraphNode SRC expressions of a selected plan. Ctrl-C cancels the
// underlying searches; -timeout bounds them.
//
// Usage:
//
//	tapas-viz                       # Figure-9 style comparison on T5
//	tapas-viz -model moe-380M -plan gshard -src
package main

import (
	"flag"
	"fmt"
	"os"

	"tapas"
	"tapas/internal/cli"
	"tapas/internal/experiments"
)

func main() {
	model := flag.String("model", "t5-100M", "model to visualize")
	plan := flag.String("plan", "", "show one plan's full assignment (tapas, dp, megatron, ffn-only, mha-only, gshard)")
	src := flag.Bool("src", false, "print SRC expressions per GraphNode")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	if *plan == "" {
		g, ok := experiments.Find("fig9")
		if !ok {
			fmt.Fprintln(os.Stderr, "figure 9 generator missing")
			os.Exit(1)
		}
		if err := g.Run(ctx, os.Stdout, experiments.Config{}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(cli.ExitCode(err))
		}
		return
	}

	eng := tapas.NewEngine()
	var (
		res *tapas.Result
		err error
	)
	if *plan == "tapas" {
		res, err = eng.Search(ctx, *model, 8)
	} else {
		res, err = eng.Baseline(ctx, *plan, *model, 8)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(cli.ExitCode(err))
	}
	fmt.Printf("%s on 8 GPUs — %s\n", *model, res.Strategy.Describe())
	if *src {
		for _, gn := range res.Strategy.Graph.TopoOrder() {
			p := res.Strategy.Assign[gn]
			if p.SRC == "" {
				continue
			}
			fmt.Printf("%-40s %s\n", gn.String(), p.SRC)
		}
	}
}
