// Command tapas-bench regenerates the paper's tables and figures on the
// simulated substrate. Ctrl-C cancels the run; -timeout bounds it.
//
// Usage:
//
//	tapas-bench -exp all          # every experiment, full fidelity
//	tapas-bench -exp fig6 -quick  # one experiment, trimmed sweeps
//	tapas-bench -timeout 10m -exp all
//	tapas-bench -list             # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tapas/internal/cli"
	"tapas/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, tab1, fig5, fig6, fig7, fig8, fig9, fig10, tab2) or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps and budgets for a fast run")
	workers := flag.Int("workers", 0, "strategy-search worker goroutines (0 = GOMAXPROCS, 1 = serial; results are identical except fig8's time-budgeted ES column)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, g := range experiments.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Title)
		}
		return
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	cfg := experiments.Config{Quick: *quick, Workers: *workers}
	run := func(g experiments.Generator) {
		fmt.Printf("==== %s ====\n", g.Title)
		start := time.Now()
		if err := g.Run(ctx, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", g.ID, err)
			os.Exit(cli.ExitCode(err))
		}
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, g := range experiments.All() {
			run(g)
		}
		return
	}
	g, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(g)
}
