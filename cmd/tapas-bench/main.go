// Command tapas-bench regenerates the paper's tables and figures on the
// simulated substrate, and emits machine-readable benchmark records for
// performance tracking. Ctrl-C cancels the run; -timeout bounds it.
//
// Usage:
//
//	tapas-bench -exp all          # every experiment, full fidelity
//	tapas-bench -exp fig6 -quick  # one experiment, trimmed sweeps
//	tapas-bench -timeout 10m -exp all
//	tapas-bench -list             # enumerate experiment ids
//	tapas-bench -exp none -json BENCH_$(date +%F).json   # benchmark record only
//	tapas-bench -exp all -json out.json -bench-models t5-770M,moe-1.3B -bench-gpus 16
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tapas"
	"tapas/internal/cli"
	"tapas/internal/experiments"
)

// benchSchemaVersion versions the -json record. Additive changes keep
// it; breaking changes bump it.
const benchSchemaVersion = 1

// benchRecord is the machine-readable output of -json: enough to plot
// search-time and cache-behavior trajectories across commits without
// scraping the human-readable tables.
type benchRecord struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Workers       int    `json:"workers"`
	Quick         bool   `json:"quick"`

	Experiments []expRecord      `json:"experiments,omitempty"`
	Searches    []searchRecord   `json:"searches,omitempty"`
	Cache       tapas.CacheStats `json:"cache"`
}

// expRecord times one experiment generator.
type expRecord struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	WallMS int64  `json:"wall_ms"`
}

// searchRecord times one (model, GPUs) search cold and warm through a
// shared engine — the serving-shape measurement.
type searchRecord struct {
	Model   string `json:"model"`
	GPUs    int    `json:"gpus"`
	Workers int    `json:"workers"`

	ColdMS       float64 `json:"cold_ms"`
	WarmMS       float64 `json:"warm_ms"`
	WarmCacheHit bool    `json:"warm_cache_hit"`

	MineMS       float64 `json:"mine_ms"`
	SearchMS     float64 `json:"search_ms"`
	EnumMS       float64 `json:"enum_ms"`
	AssembleMS   float64 `json:"assemble_ms"`
	MineLevels   int     `json:"mine_levels"`
	Classes      int     `json:"classes"`
	Examined     int     `json:"examined"`
	CostSeconds  float64 `json:"cost_seconds"`
	TFLOPSPerGPU float64 `json:"tflops_per_gpu"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, tab1, fig5, fig6, fig7, fig8, fig9, fig10, tab2), 'all', or 'none' to skip experiments")
	quick := flag.Bool("quick", false, "trim sweeps and budgets for a fast run")
	workers := flag.Int("workers", 0, "strategy-search worker goroutines (0 = GOMAXPROCS, 1 = serial; results are identical except fig8's time-budgeted ES column)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark record to this file")
	benchModels := flag.String("bench-models", "t5-770M", "comma-separated models for the -json cold/warm search sweep")
	benchGPUs := flag.Int("bench-gpus", 8, "GPU count for the -json search sweep")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, g := range experiments.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Title)
		}
		return
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	record := &benchRecord{
		SchemaVersion: benchSchemaVersion,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       *workers,
		Quick:         *quick,
	}

	cfg := experiments.Config{Quick: *quick, Workers: *workers}
	run := func(g experiments.Generator) {
		fmt.Printf("==== %s ====\n", g.Title)
		start := time.Now()
		if err := g.Run(ctx, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", g.ID, err)
			os.Exit(cli.ExitCode(err))
		}
		wall := time.Since(start)
		record.Experiments = append(record.Experiments, expRecord{
			ID: g.ID, Title: g.Title, WallMS: wall.Milliseconds(),
		})
		fmt.Printf("(generated in %v)\n\n", wall.Round(time.Millisecond))
	}

	switch *exp {
	case "none":
		// Benchmark record only; no experiment tables.
	case "all":
		for _, g := range experiments.All() {
			run(g)
		}
	default:
		g, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		run(g)
	}

	if *jsonOut == "" {
		return
	}
	if err := benchSweep(ctx, record, *benchModels, *benchGPUs, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "benchmark sweep failed: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
	if err := writeRecord(*jsonOut, record); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchmark record written to %s\n", *jsonOut)
}

// benchSweep runs each model cold then warm through one shared engine,
// so the warm number measures the serving-path cache hit.
func benchSweep(ctx context.Context, record *benchRecord, models string, gpus, workers int) error {
	eng := tapas.NewEngine(tapas.WithWorkers(workers))
	for _, name := range strings.Split(models, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		t0 := time.Now()
		cold, err := eng.Search(ctx, name, gpus)
		if err != nil {
			return fmt.Errorf("cold %s: %w", name, err)
		}
		coldMS := float64(time.Since(t0).Microseconds()) / 1e3
		t1 := time.Now()
		warm, err := eng.Search(ctx, name, gpus)
		if err != nil {
			return fmt.Errorf("warm %s: %w", name, err)
		}
		warmMS := float64(time.Since(t1).Microseconds()) / 1e3
		record.Searches = append(record.Searches, searchRecord{
			Model:        name,
			GPUs:         gpus,
			Workers:      workers,
			ColdMS:       coldMS,
			WarmMS:       warmMS,
			WarmCacheHit: warm.CacheHit,
			MineMS:       float64(cold.MineTime.Microseconds()) / 1e3,
			SearchMS:     float64(cold.SearchTime.Microseconds()) / 1e3,
			EnumMS:       float64(cold.EnumTime.Microseconds()) / 1e3,
			AssembleMS:   float64(cold.AssembleTime.Microseconds()) / 1e3,
			MineLevels:   cold.MineLevels,
			Classes:      cold.Classes,
			Examined:     cold.Examined,
			CostSeconds:  cold.Strategy.Cost.Total(),
			TFLOPSPerGPU: cold.Report.TFLOPSPerGPU,
		})
	}
	record.Cache = eng.CacheStats()
	return nil
}

// writeRecord writes the record as indented JSON.
func writeRecord(path string, record *benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(record); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
