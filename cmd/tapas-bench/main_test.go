package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// binary is built once in TestMain and shared by every smoke test.
var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tapas-bench-cli")
	if err != nil {
		panic(err)
	}
	binary = filepath.Join(dir, "tapas-bench")
	build := exec.Command("go", "build", "-o", binary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		panic("building tapas-bench: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestCLIListExperiments(t *testing.T) {
	out, err := exec.Command(binary, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("tapas-bench -list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig1", "fig6", "tab2"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s:\n%s", id, out)
		}
	}
}

func TestCLIQuickExperiment(t *testing.T) {
	out, err := exec.Command(binary, "-exp", "fig10", "-quick", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("tapas-bench -exp fig10 -quick: %v\n%s", err, out)
	}
	if !regexp.MustCompile(`==== Figure 10`).Match(out) {
		t.Errorf("missing experiment header:\n%s", out)
	}
	if !regexp.MustCompile(`\(generated in .*\)`).Match(out) {
		t.Errorf("missing completion footer:\n%s", out)
	}
}

func TestCLIJSONRecord(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	cmd := exec.Command(binary, "-exp", "none", "-json", out, "-bench-models", "t5-100M,twotower-small", "-bench-gpus", "8")
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("tapas-bench -json: %v\n%s", err, b)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var record struct {
		SchemaVersion int    `json:"schema_version"`
		Timestamp     string `json:"timestamp"`
		GoVersion     string `json:"go_version"`
		Searches      []struct {
			Model        string  `json:"model"`
			GPUs         int     `json:"gpus"`
			ColdMS       float64 `json:"cold_ms"`
			WarmMS       float64 `json:"warm_ms"`
			WarmCacheHit bool    `json:"warm_cache_hit"`
		} `json:"searches"`
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(blob, &record); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, blob)
	}
	if record.SchemaVersion != 1 || record.Timestamp == "" || record.GoVersion == "" {
		t.Errorf("metadata incomplete: %+v", record)
	}
	if len(record.Searches) != 2 {
		t.Fatalf("want 2 search records, got %d", len(record.Searches))
	}
	for _, s := range record.Searches {
		if s.ColdMS <= 0 {
			t.Errorf("%s: cold_ms = %v", s.Model, s.ColdMS)
		}
		if !s.WarmCacheHit {
			t.Errorf("%s: warm run was not a cache hit", s.Model)
		}
	}
	if record.Cache.Hits != 2 || record.Cache.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 hits / 2 misses", record.Cache)
	}
}

func TestCLIUnknownExperimentFails(t *testing.T) {
	out, err := exec.Command(binary, "-exp", "fig99").CombinedOutput()
	if err == nil {
		t.Fatalf("want non-zero exit for unknown experiment, got:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Errorf("missing diagnostic:\n%s", out)
	}
}
