package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// binary is built once in TestMain and shared by every smoke test.
var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tapas-bench-cli")
	if err != nil {
		panic(err)
	}
	binary = filepath.Join(dir, "tapas-bench")
	build := exec.Command("go", "build", "-o", binary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		panic("building tapas-bench: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestCLIListExperiments(t *testing.T) {
	out, err := exec.Command(binary, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("tapas-bench -list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig1", "fig6", "tab2"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s:\n%s", id, out)
		}
	}
}

func TestCLIQuickExperiment(t *testing.T) {
	out, err := exec.Command(binary, "-exp", "fig10", "-quick", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("tapas-bench -exp fig10 -quick: %v\n%s", err, out)
	}
	if !regexp.MustCompile(`==== Figure 10`).Match(out) {
		t.Errorf("missing experiment header:\n%s", out)
	}
	if !regexp.MustCompile(`\(generated in .*\)`).Match(out) {
		t.Errorf("missing completion footer:\n%s", out)
	}
}

func TestCLIUnknownExperimentFails(t *testing.T) {
	out, err := exec.Command(binary, "-exp", "fig99").CombinedOutput()
	if err == nil {
		t.Fatalf("want non-zero exit for unknown experiment, got:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Errorf("missing diagnostic:\n%s", out)
	}
}
