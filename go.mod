module tapas

go 1.22
